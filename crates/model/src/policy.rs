//! Tenant policies and admission vocabulary for serving fronts.
//!
//! A scheduling *service* (see the `sws_service` crate) accepts
//! [`crate::solve::SolveRequest`]s from many tenants and must decide —
//! **before** spending any scheduling work — whether to admit, degrade
//! or refuse each request. The decision vocabulary lives here at the
//! model layer, next to [`Guarantee`](crate::solve::Guarantee) and
//! [`CostEstimate`](crate::solve::CostEstimate), so every front (the
//! in-process service, the batch path, future network fronts) speaks the
//! same admission language and the policy table in `docs/ALGORITHMS.md`
//! has one source of truth.
//!
//! The admission pipeline a front is expected to run per request:
//!
//! 1. **Tenant lookup** — unknown tenants are refused
//!    ([`QuotaError::UnknownTenant`]) unless a default policy is
//!    configured.
//! 2. **Guarantee floor** — the request's required guarantee is raised
//!    to the tenant's [`TenantPolicy::guarantee_floor`] when it asks for
//!    less (the tenant's SLA class is a *minimum*, not a suggestion).
//! 3. **Backend planning** — the routing layer resolves the cheapest
//!    qualifying backend and its [`CostEstimate`]. No backend at the
//!    required level either degrades (policy permitting) or surfaces the
//!    typed `NoQualifiedBackend` refusal.
//! 4. **Work gate** — an estimate above
//!    [`TenantPolicy::max_estimated_work`] is refused
//!    ([`QuotaError::WorkExceeded`]) or, under
//!    [`OverflowPolicy::Degrade`], re-planned at
//!    [`Guarantee::PaperRatio`](crate::solve::Guarantee::PaperRatio).
//! 5. **In-flight quota** — a tenant at
//!    [`TenantPolicy::max_in_flight`] admitted-but-unfinished requests
//!    is refused ([`QuotaError::InFlightExceeded`]) unless its overflow
//!    policy is [`OverflowPolicy::Queue`].
//! 6. **Queue capacity** — a full bounded queue refuses
//!    ([`QuotaError::QueueFull`]) regardless of policy; backpressure is
//!    never silent.

use std::fmt;
use std::time::Duration;

use crate::solve::{BackendId, CostEstimate, Guarantee};

/// When a serving front should start and stop *shedding* a tenant's
/// load — the overload half of the admission vocabulary.
///
/// A front tracks two pressure signals per tenant: the tenant's queued
/// backlog (jobs admitted but not yet dispatched) and its recent p99
/// submit→completion latency over a sliding window. Either signal
/// crossing its **high** watermark puts the tenant into the *shedding*
/// state; the tenant leaves it only when **both** signals are back at
/// or under their **low** watermarks — classic hysteresis, so admission
/// does not flap at the threshold.
///
/// While shedding, the front walks the documented ladder instead of
/// admitting at full strength: requests above
/// [`Guarantee::PaperRatio`](crate::solve::Guarantee::PaperRatio) are
/// degraded toward the tenant's [`TenantPolicy::guarantee_floor`]
/// (when the floor admits it), and everything else is refused with the
/// typed [`QuotaError::Overloaded`] — the same refusal vocabulary every
/// other gate speaks, so edges can map it onto backpressure codes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedPolicy {
    /// Enter shedding when the tenant's queued backlog reaches this.
    pub queue_high: usize,
    /// Leave shedding only once the backlog is back at or under this
    /// (and the p99 signal, when configured, is also under its low
    /// watermark). Clamped to `queue_high` at construction.
    pub queue_low: usize,
    /// Enter shedding when the tenant's recent p99 latency exceeds
    /// this. `None` disables the latency signal.
    pub p99_high: Option<Duration>,
    /// Leave shedding only once the recent p99 is back at or under
    /// this. Defaults to `p99_high` when unset.
    pub p99_low: Option<Duration>,
}

impl ShedPolicy {
    /// A policy that never sheds (both signals disabled).
    pub fn disabled() -> Self {
        ShedPolicy {
            queue_high: usize::MAX,
            queue_low: usize::MAX,
            p99_high: None,
            p99_low: None,
        }
    }

    /// Sheds on queued backlog: enter at `high`, recover at `low`
    /// (clamped to `high`).
    pub fn on_queue_depth(high: usize, low: usize) -> Self {
        ShedPolicy {
            queue_high: high.max(1),
            queue_low: low.min(high),
            ..Self::disabled()
        }
    }

    /// Adds the latency signal: enter when the recent p99 exceeds
    /// `high`, recover once it is back at or under `low` (clamped to
    /// `high`).
    pub fn with_p99(mut self, high: Duration, low: Duration) -> Self {
        self.p99_high = Some(high);
        self.p99_low = Some(low.min(high));
        self
    }

    /// Whether any pressure signal is configured.
    pub fn is_enabled(&self) -> bool {
        self.queue_high != usize::MAX || self.p99_high.is_some()
    }

    /// Whether `(backlog, recent p99)` is over a high watermark — the
    /// condition for *entering* the shedding state.
    pub fn over_high(&self, queued: usize, recent_p99: Option<Duration>) -> bool {
        if queued >= self.queue_high {
            return true;
        }
        match (recent_p99, self.p99_high) {
            (Some(p99), Some(high)) => p99 > high,
            _ => false,
        }
    }

    /// Whether `(backlog, recent p99)` is back under every low
    /// watermark — the condition for *leaving* the shedding state.
    pub fn under_low(&self, queued: usize, recent_p99: Option<Duration>) -> bool {
        if self.queue_high != usize::MAX && queued > self.queue_low {
            return false;
        }
        match (recent_p99, self.p99_low.or(self.p99_high)) {
            (Some(p99), Some(low)) => p99 <= low,
            // No latency samples in the window (or signal disabled)
            // counts as recovered pressure.
            _ => true,
        }
    }
}

impl Default for ShedPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

/// What a tenant's requests do when a gate trips (quota reached, work
/// estimate over budget, or no backend at the required guarantee).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Refuse immediately with the typed [`QuotaError`].
    Reject,
    /// Absorb bursts in the bounded queue: the per-tenant in-flight
    /// quota is not enforced (only a full queue refuses). Work-estimate
    /// and guarantee failures still refuse — queueing cannot make a
    /// request cheaper.
    Queue,
    /// Downgrade the required guarantee to
    /// [`Guarantee::PaperRatio`] (never below
    /// [`TenantPolicy::guarantee_floor`]) and re-plan; refuse only when
    /// the degraded request still fails its gates.
    Degrade,
}

impl OverflowPolicy {
    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            OverflowPolicy::Reject => "reject",
            OverflowPolicy::Queue => "queue",
            OverflowPolicy::Degrade => "degrade",
        }
    }
}

/// How a tenant's requests respond to *transient* failures — a full
/// queue at submission, or a solver panic mid-dispatch. Typed solve
/// errors (e.g. `BudgetNotMet`) and cancellations are never retried:
/// they are answers, not accidents.
///
/// Backoff is capped exponential with deterministic jitter: retry `k`
/// (1-based) sleeps `min(base · 2^(k−1), max) · (1 + jitter · u_k)`
/// where `u_k ∈ [0, 1)` is drawn from a splitmix64 hash of
/// `jitter_seed ^ k` — the same seed always produces the same backoff
/// sequence, which keeps fault-injection tests reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first; `1` disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff (pre-jitter).
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each backoff is stretched by up to
    /// this fraction of itself.
    pub jitter: f64,
    /// Seed for the deterministic jitter sequence.
    pub jitter_seed: u64,
    /// On the final failed attempt, step the guarantee down to the
    /// tenant's [`TenantPolicy::guarantee_floor`] (never below it) and
    /// try once more at the cheaper class before giving up.
    pub degrade_on_exhaustion: bool,
}

impl RetryPolicy {
    /// No retries: the first failure is final.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
            jitter_seed: 0,
            degrade_on_exhaustion: false,
        }
    }

    /// Up to `max_attempts` total attempts with a small default backoff
    /// (1 ms base, 100 ms cap, 10% jitter).
    pub fn with_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            jitter: 0.1,
            jitter_seed: 0x5157_2e8a_9d1c_f00d,
            degrade_on_exhaustion: false,
        }
    }

    /// Replaces the backoff bracket.
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> Self {
        self.base_backoff = base;
        self.max_backoff = max.max(base);
        self
    }

    /// Replaces the jitter fraction and seed.
    pub fn with_jitter(mut self, jitter: f64, seed: u64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self.jitter_seed = seed;
        self
    }

    /// Enables the degradation ladder on exhaustion.
    pub fn with_degrade_on_exhaustion(mut self, degrade: bool) -> Self {
        self.degrade_on_exhaustion = degrade;
        self
    }

    /// Whether another attempt is allowed after `attempts_made`
    /// attempts have already failed.
    pub fn should_retry(&self, attempts_made: u32) -> bool {
        attempts_made < self.max_attempts
    }

    /// The backoff before retry `retry` (1-based): capped exponential
    /// plus deterministic jitter. `retry = 0` returns zero.
    pub fn backoff_for(&self, retry: u32) -> Duration {
        if retry == 0 || self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let doublings = (retry - 1).min(32);
        let raw = self
            .base_backoff
            .saturating_mul(1u32 << doublings.min(31))
            .min(self.max_backoff);
        if self.jitter <= 0.0 {
            return raw;
        }
        let unit = splitmix64(self.jitter_seed ^ u64::from(retry)) as f64 / (u64::MAX as f64 + 1.0);
        raw.mul_f64(1.0 + self.jitter * unit)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// The splitmix64 mixing function — a tiny, high-quality hash used for
/// deterministic jitter (and by the service layer's fault harness).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-tenant admission policy: quotas, the cost gate and the guarantee
/// class the tenant is served at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPolicy {
    /// Maximum admitted-but-unfinished requests; beyond it, admission
    /// follows [`TenantPolicy::overflow`].
    pub max_in_flight: usize,
    /// Maximum pre-dispatch [`CostEstimate::work`] per request, in the
    /// shared abstract work units. Requests estimated above it are
    /// refused or degraded — the same idea as the documented gates on
    /// the PTAS configuration DP and the exact enumerators, promoted to
    /// a tenant knob.
    pub max_estimated_work: f64,
    /// The minimum guarantee class this tenant is served at: requests
    /// demanding less are raised to it, and degradation never goes
    /// below it.
    pub guarantee_floor: Guarantee,
    /// What to do when a gate trips.
    pub overflow: OverflowPolicy,
    /// How transient failures (queue-full, solver panic) are retried.
    pub retry: RetryPolicy,
    /// The tenant's deficit-round-robin weight: its long-run share of
    /// scheduler service, in the shared `CostEstimate` work units, is
    /// `weight / Σ weights` over the backlogged tenants. Clamped to
    /// ≥ 1; idle tenants lend their share instead of banking it (the
    /// queue is work-conserving).
    pub weight: u32,
    /// When the serving front starts shedding this tenant's load. See
    /// [`ShedPolicy`]; disabled by default.
    pub shed: ShedPolicy,
}

impl TenantPolicy {
    /// A policy with no effective limits: unbounded in-flight, unbounded
    /// work, no guarantee floor, reject on overflow (which can then only
    /// mean a full queue).
    pub fn unlimited() -> Self {
        TenantPolicy {
            max_in_flight: usize::MAX,
            max_estimated_work: f64::INFINITY,
            guarantee_floor: Guarantee::None,
            overflow: OverflowPolicy::Reject,
            retry: RetryPolicy::none(),
            weight: 1,
            shed: ShedPolicy::disabled(),
        }
    }

    /// Replaces the in-flight quota.
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Replaces the per-request work gate.
    pub fn with_max_estimated_work(mut self, max_estimated_work: f64) -> Self {
        self.max_estimated_work = max_estimated_work;
        self
    }

    /// Replaces the guarantee floor.
    pub fn with_guarantee_floor(mut self, floor: Guarantee) -> Self {
        self.guarantee_floor = floor;
        self
    }

    /// Replaces the overflow behavior.
    pub fn with_overflow(mut self, overflow: OverflowPolicy) -> Self {
        self.overflow = overflow;
        self
    }

    /// Replaces the retry policy for transient failures.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the deficit-round-robin weight (clamped to ≥ 1).
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Replaces the load-shedding policy.
    pub fn with_shed(mut self, shed: ShedPolicy) -> Self {
        self.shed = shed;
        self
    }

    /// The guarantee a request demanding `requested` is actually served
    /// at under this policy: raised to the floor when the floor is
    /// stronger.
    pub fn effective_guarantee(&self, requested: Guarantee) -> Guarantee {
        if requested.satisfies(&self.guarantee_floor) {
            requested
        } else {
            self.guarantee_floor
        }
    }
}

impl Default for TenantPolicy {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// Why a request was refused at admission — the typed quota/backpressure
/// half of the refusal space (the other half is the routing layer's
/// `ModelError::NoQualifiedBackend`, reported when no backend serves the
/// request at its required guarantee).
#[derive(Debug, Clone, PartialEq)]
pub enum QuotaError {
    /// The tenant is not registered and no default policy exists.
    UnknownTenant {
        /// The unregistered tenant id.
        tenant: String,
    },
    /// The tenant is at its in-flight quota.
    InFlightExceeded {
        /// The tenant id.
        tenant: String,
        /// Admitted-but-unfinished requests at submission time.
        in_flight: usize,
        /// The policy's quota.
        limit: usize,
    },
    /// The pre-dispatch work estimate exceeds the tenant's gate.
    WorkExceeded {
        /// Estimated work units for the cheapest qualifying backend.
        estimated: f64,
        /// The policy's [`TenantPolicy::max_estimated_work`].
        limit: f64,
    },
    /// The bounded request queue is full.
    QueueFull {
        /// The queue's capacity.
        capacity: usize,
    },
    /// The tenant is in the shedding state: its backlog or recent p99
    /// latency crossed the [`ShedPolicy`] high watermark and has not
    /// yet recovered under the low one. The request could not be
    /// served by degrading toward the guarantee floor, so it is
    /// refused to protect the tenants behind it.
    Overloaded {
        /// The tenant id.
        tenant: String,
        /// The tenant's queued backlog at refusal time.
        queued: usize,
        /// The tenant's recent p99 latency, when the window had
        /// samples.
        recent_p99: Option<Duration>,
    },
}

impl fmt::Display for QuotaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuotaError::UnknownTenant { tenant } => {
                write!(f, "tenant '{tenant}' is not registered")
            }
            QuotaError::InFlightExceeded {
                tenant,
                in_flight,
                limit,
            } => write!(
                f,
                "tenant '{tenant}' has {in_flight} requests in flight, quota is {limit}"
            ),
            QuotaError::WorkExceeded { estimated, limit } => write!(
                f,
                "estimated work {estimated:.0} exceeds the tenant gate {limit:.0}"
            ),
            QuotaError::QueueFull { capacity } => {
                write!(f, "request queue is full (capacity {capacity})")
            }
            QuotaError::Overloaded {
                tenant,
                queued,
                recent_p99,
            } => {
                write!(f, "tenant '{tenant}' is shedding load ({queued} queued")?;
                if let Some(p99) = recent_p99 {
                    write!(f, ", recent p99 {p99:?}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl std::error::Error for QuotaError {}

/// The admission decision for one request, carrying enough provenance
/// to audit it: the planned backend and its pre-dispatch cost for
/// admitted work, the from/to guarantee pair for degradations, the
/// typed reason for refusals.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionVerdict {
    /// Admitted at the (floor-adjusted) required guarantee.
    Admitted {
        /// The backend the routing layer planned.
        backend: BackendId,
        /// Its pre-dispatch work estimate.
        cost: CostEstimate,
    },
    /// Admitted after a policy-driven downgrade of the required
    /// guarantee.
    Degraded {
        /// The guarantee the request originally required (after the
        /// floor adjustment).
        from: Guarantee,
        /// The guarantee it was admitted at.
        to: Guarantee,
        /// The backend planned for the degraded request.
        backend: BackendId,
        /// Its pre-dispatch work estimate.
        cost: CostEstimate,
    },
    /// Refused outright.
    Refused {
        /// The typed refusal reason.
        reason: QuotaError,
    },
}

impl AdmissionVerdict {
    /// Whether the verdict admits the request (possibly degraded).
    pub fn is_admitted(&self) -> bool {
        !matches!(self, AdmissionVerdict::Refused { .. })
    }

    /// The planned backend, for admitted verdicts.
    pub fn backend(&self) -> Option<BackendId> {
        match self {
            AdmissionVerdict::Admitted { backend, .. }
            | AdmissionVerdict::Degraded { backend, .. } => Some(*backend),
            AdmissionVerdict::Refused { .. } => None,
        }
    }

    /// The pre-dispatch cost estimate, for admitted verdicts.
    pub fn cost(&self) -> Option<CostEstimate> {
        match self {
            AdmissionVerdict::Admitted { cost, .. } | AdmissionVerdict::Degraded { cost, .. } => {
                Some(*cost)
            }
            AdmissionVerdict::Refused { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_guarantee_raises_to_the_floor() {
        let policy = TenantPolicy::unlimited().with_guarantee_floor(Guarantee::PaperRatio);
        assert_eq!(
            policy.effective_guarantee(Guarantee::None),
            Guarantee::PaperRatio
        );
        assert_eq!(
            policy.effective_guarantee(Guarantee::PaperRatio),
            Guarantee::PaperRatio
        );
        // Stronger demands pass through untouched.
        assert_eq!(
            policy.effective_guarantee(Guarantee::Exact),
            Guarantee::Exact
        );
        let eps = Guarantee::EpsilonOptimal(0.1);
        assert_eq!(policy.effective_guarantee(eps), eps);
    }

    #[test]
    fn unlimited_policy_gates_nothing() {
        let policy = TenantPolicy::unlimited();
        assert_eq!(policy.max_in_flight, usize::MAX);
        assert!(policy.max_estimated_work.is_infinite());
        assert_eq!(policy.effective_guarantee(Guarantee::None), Guarantee::None);
    }

    #[test]
    fn quota_errors_display_their_context() {
        let e = QuotaError::InFlightExceeded {
            tenant: "acme".into(),
            in_flight: 9,
            limit: 8,
        };
        let msg = e.to_string();
        assert!(msg.contains("acme") && msg.contains('9') && msg.contains('8'));
        assert!(QuotaError::QueueFull { capacity: 4 }
            .to_string()
            .contains('4'));
    }

    #[test]
    fn retry_backoff_is_capped_exponential() {
        let policy = RetryPolicy::with_attempts(8)
            .with_backoff(Duration::from_millis(10), Duration::from_millis(80))
            .with_jitter(0.0, 0);
        assert_eq!(policy.backoff_for(0), Duration::ZERO);
        assert_eq!(policy.backoff_for(1), Duration::from_millis(10));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(20));
        assert_eq!(policy.backoff_for(3), Duration::from_millis(40));
        assert_eq!(policy.backoff_for(4), Duration::from_millis(80));
        // The cap holds for every later retry, including doubling
        // counts that would overflow a naive shift.
        for retry in 5..200 {
            assert_eq!(policy.backoff_for(retry), Duration::from_millis(80));
        }
    }

    #[test]
    fn retry_jitter_is_deterministic_under_the_seed() {
        let a = RetryPolicy::with_attempts(4)
            .with_backoff(Duration::from_millis(5), Duration::from_secs(1))
            .with_jitter(0.5, 42);
        let b = a;
        for retry in 1..10 {
            let d = a.backoff_for(retry);
            // Same seed, same sequence.
            assert_eq!(d, b.backoff_for(retry));
            // Jitter only ever stretches, bounded by the fraction.
            let raw = a.with_jitter(0.0, 0).backoff_for(retry);
            assert!(d >= raw && d <= raw.mul_f64(1.5));
        }
        // A different seed perturbs at least one backoff.
        let c = a.with_jitter(0.5, 43);
        assert!((1..10).any(|r| c.backoff_for(r) != a.backoff_for(r)));
    }

    #[test]
    fn retry_budget_counts_total_attempts() {
        let none = RetryPolicy::none();
        assert!(!none.should_retry(1));
        let three = RetryPolicy::with_attempts(3);
        assert!(three.should_retry(1));
        assert!(three.should_retry(2));
        assert!(!three.should_retry(3));
    }

    #[test]
    fn shed_policy_watermarks_are_hysteretic() {
        let shed = ShedPolicy::on_queue_depth(10, 4);
        assert!(shed.is_enabled());
        // Below high: not over. At or above high: over.
        assert!(!shed.over_high(9, None));
        assert!(shed.over_high(10, None));
        // The low watermark is strictly easier than the high one: the
        // band between them is where hysteresis lives.
        assert!(!shed.under_low(5, None));
        assert!(shed.under_low(4, None));

        let latency =
            ShedPolicy::disabled().with_p99(Duration::from_millis(50), Duration::from_millis(20));
        assert!(latency.is_enabled());
        assert!(!latency.over_high(1_000_000, Some(Duration::from_millis(50))));
        assert!(latency.over_high(0, Some(Duration::from_millis(51))));
        assert!(!latency.under_low(0, Some(Duration::from_millis(21))));
        assert!(latency.under_low(0, Some(Duration::from_millis(20))));
        // An empty latency window counts as recovered pressure.
        assert!(latency.under_low(0, None));

        assert!(!ShedPolicy::disabled().is_enabled());
        assert!(!ShedPolicy::disabled().over_high(usize::MAX - 1, None));
        assert!(ShedPolicy::disabled().under_low(usize::MAX - 1, None));
    }

    #[test]
    fn shed_policy_low_watermarks_clamp_to_high() {
        let shed = ShedPolicy::on_queue_depth(4, 100);
        assert_eq!(shed.queue_low, 4);
        let latency =
            ShedPolicy::disabled().with_p99(Duration::from_millis(10), Duration::from_millis(90));
        assert_eq!(latency.p99_low, Some(Duration::from_millis(10)));
    }

    #[test]
    fn tenant_weight_clamps_to_at_least_one() {
        assert_eq!(TenantPolicy::unlimited().weight, 1);
        assert_eq!(TenantPolicy::unlimited().with_weight(0).weight, 1);
        assert_eq!(TenantPolicy::unlimited().with_weight(8).weight, 8);
    }

    #[test]
    fn overloaded_refusals_display_their_pressure() {
        let e = QuotaError::Overloaded {
            tenant: "acme".into(),
            queued: 42,
            recent_p99: Some(Duration::from_millis(7)),
        };
        let msg = e.to_string();
        assert!(msg.contains("acme") && msg.contains("42") && msg.contains("7ms"));
        let quiet = QuotaError::Overloaded {
            tenant: "acme".into(),
            queued: 3,
            recent_p99: None,
        };
        assert!(quiet.to_string().contains("3 queued"));
    }

    #[test]
    fn verdict_accessors_expose_the_plan() {
        use crate::solve::CostModel;
        let cost = CostEstimate {
            work: 128.0,
            model: CostModel::Linearithmic,
        };
        let admitted = AdmissionVerdict::Admitted {
            backend: BackendId::Lpt,
            cost,
        };
        assert!(admitted.is_admitted());
        assert_eq!(admitted.backend(), Some(BackendId::Lpt));
        assert_eq!(admitted.cost(), Some(cost));
        let refused = AdmissionVerdict::Refused {
            reason: QuotaError::QueueFull { capacity: 1 },
        };
        assert!(!refused.is_admitted());
        assert_eq!(refused.backend(), None);
        assert_eq!(refused.cost(), None);
    }
}
