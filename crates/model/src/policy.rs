//! Tenant policies and admission vocabulary for serving fronts.
//!
//! A scheduling *service* (see the `sws_service` crate) accepts
//! [`crate::solve::SolveRequest`]s from many tenants and must decide —
//! **before** spending any scheduling work — whether to admit, degrade
//! or refuse each request. The decision vocabulary lives here at the
//! model layer, next to [`Guarantee`](crate::solve::Guarantee) and
//! [`CostEstimate`](crate::solve::CostEstimate), so every front (the
//! in-process service, the batch path, future network fronts) speaks the
//! same admission language and the policy table in `docs/ALGORITHMS.md`
//! has one source of truth.
//!
//! The admission pipeline a front is expected to run per request:
//!
//! 1. **Tenant lookup** — unknown tenants are refused
//!    ([`QuotaError::UnknownTenant`]) unless a default policy is
//!    configured.
//! 2. **Guarantee floor** — the request's required guarantee is raised
//!    to the tenant's [`TenantPolicy::guarantee_floor`] when it asks for
//!    less (the tenant's SLA class is a *minimum*, not a suggestion).
//! 3. **Backend planning** — the routing layer resolves the cheapest
//!    qualifying backend and its [`CostEstimate`]. No backend at the
//!    required level either degrades (policy permitting) or surfaces the
//!    typed `NoQualifiedBackend` refusal.
//! 4. **Work gate** — an estimate above
//!    [`TenantPolicy::max_estimated_work`] is refused
//!    ([`QuotaError::WorkExceeded`]) or, under
//!    [`OverflowPolicy::Degrade`], re-planned at
//!    [`Guarantee::PaperRatio`](crate::solve::Guarantee::PaperRatio).
//! 5. **In-flight quota** — a tenant at
//!    [`TenantPolicy::max_in_flight`] admitted-but-unfinished requests
//!    is refused ([`QuotaError::InFlightExceeded`]) unless its overflow
//!    policy is [`OverflowPolicy::Queue`].
//! 6. **Queue capacity** — a full bounded queue refuses
//!    ([`QuotaError::QueueFull`]) regardless of policy; backpressure is
//!    never silent.

use std::fmt;

use crate::solve::{BackendId, CostEstimate, Guarantee};

/// What a tenant's requests do when a gate trips (quota reached, work
/// estimate over budget, or no backend at the required guarantee).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Refuse immediately with the typed [`QuotaError`].
    Reject,
    /// Absorb bursts in the bounded queue: the per-tenant in-flight
    /// quota is not enforced (only a full queue refuses). Work-estimate
    /// and guarantee failures still refuse — queueing cannot make a
    /// request cheaper.
    Queue,
    /// Downgrade the required guarantee to
    /// [`Guarantee::PaperRatio`] (never below
    /// [`TenantPolicy::guarantee_floor`]) and re-plan; refuse only when
    /// the degraded request still fails its gates.
    Degrade,
}

impl OverflowPolicy {
    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            OverflowPolicy::Reject => "reject",
            OverflowPolicy::Queue => "queue",
            OverflowPolicy::Degrade => "degrade",
        }
    }
}

/// Per-tenant admission policy: quotas, the cost gate and the guarantee
/// class the tenant is served at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPolicy {
    /// Maximum admitted-but-unfinished requests; beyond it, admission
    /// follows [`TenantPolicy::overflow`].
    pub max_in_flight: usize,
    /// Maximum pre-dispatch [`CostEstimate::work`] per request, in the
    /// shared abstract work units. Requests estimated above it are
    /// refused or degraded — the same idea as the documented gates on
    /// the PTAS configuration DP and the exact enumerators, promoted to
    /// a tenant knob.
    pub max_estimated_work: f64,
    /// The minimum guarantee class this tenant is served at: requests
    /// demanding less are raised to it, and degradation never goes
    /// below it.
    pub guarantee_floor: Guarantee,
    /// What to do when a gate trips.
    pub overflow: OverflowPolicy,
}

impl TenantPolicy {
    /// A policy with no effective limits: unbounded in-flight, unbounded
    /// work, no guarantee floor, reject on overflow (which can then only
    /// mean a full queue).
    pub fn unlimited() -> Self {
        TenantPolicy {
            max_in_flight: usize::MAX,
            max_estimated_work: f64::INFINITY,
            guarantee_floor: Guarantee::None,
            overflow: OverflowPolicy::Reject,
        }
    }

    /// Replaces the in-flight quota.
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Replaces the per-request work gate.
    pub fn with_max_estimated_work(mut self, max_estimated_work: f64) -> Self {
        self.max_estimated_work = max_estimated_work;
        self
    }

    /// Replaces the guarantee floor.
    pub fn with_guarantee_floor(mut self, floor: Guarantee) -> Self {
        self.guarantee_floor = floor;
        self
    }

    /// Replaces the overflow behavior.
    pub fn with_overflow(mut self, overflow: OverflowPolicy) -> Self {
        self.overflow = overflow;
        self
    }

    /// The guarantee a request demanding `requested` is actually served
    /// at under this policy: raised to the floor when the floor is
    /// stronger.
    pub fn effective_guarantee(&self, requested: Guarantee) -> Guarantee {
        if requested.satisfies(&self.guarantee_floor) {
            requested
        } else {
            self.guarantee_floor
        }
    }
}

impl Default for TenantPolicy {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// Why a request was refused at admission — the typed quota/backpressure
/// half of the refusal space (the other half is the routing layer's
/// `ModelError::NoQualifiedBackend`, reported when no backend serves the
/// request at its required guarantee).
#[derive(Debug, Clone, PartialEq)]
pub enum QuotaError {
    /// The tenant is not registered and no default policy exists.
    UnknownTenant {
        /// The unregistered tenant id.
        tenant: String,
    },
    /// The tenant is at its in-flight quota.
    InFlightExceeded {
        /// The tenant id.
        tenant: String,
        /// Admitted-but-unfinished requests at submission time.
        in_flight: usize,
        /// The policy's quota.
        limit: usize,
    },
    /// The pre-dispatch work estimate exceeds the tenant's gate.
    WorkExceeded {
        /// Estimated work units for the cheapest qualifying backend.
        estimated: f64,
        /// The policy's [`TenantPolicy::max_estimated_work`].
        limit: f64,
    },
    /// The bounded request queue is full.
    QueueFull {
        /// The queue's capacity.
        capacity: usize,
    },
}

impl fmt::Display for QuotaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuotaError::UnknownTenant { tenant } => {
                write!(f, "tenant '{tenant}' is not registered")
            }
            QuotaError::InFlightExceeded {
                tenant,
                in_flight,
                limit,
            } => write!(
                f,
                "tenant '{tenant}' has {in_flight} requests in flight, quota is {limit}"
            ),
            QuotaError::WorkExceeded { estimated, limit } => write!(
                f,
                "estimated work {estimated:.0} exceeds the tenant gate {limit:.0}"
            ),
            QuotaError::QueueFull { capacity } => {
                write!(f, "request queue is full (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for QuotaError {}

/// The admission decision for one request, carrying enough provenance
/// to audit it: the planned backend and its pre-dispatch cost for
/// admitted work, the from/to guarantee pair for degradations, the
/// typed reason for refusals.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionVerdict {
    /// Admitted at the (floor-adjusted) required guarantee.
    Admitted {
        /// The backend the routing layer planned.
        backend: BackendId,
        /// Its pre-dispatch work estimate.
        cost: CostEstimate,
    },
    /// Admitted after a policy-driven downgrade of the required
    /// guarantee.
    Degraded {
        /// The guarantee the request originally required (after the
        /// floor adjustment).
        from: Guarantee,
        /// The guarantee it was admitted at.
        to: Guarantee,
        /// The backend planned for the degraded request.
        backend: BackendId,
        /// Its pre-dispatch work estimate.
        cost: CostEstimate,
    },
    /// Refused outright.
    Refused {
        /// The typed refusal reason.
        reason: QuotaError,
    },
}

impl AdmissionVerdict {
    /// Whether the verdict admits the request (possibly degraded).
    pub fn is_admitted(&self) -> bool {
        !matches!(self, AdmissionVerdict::Refused { .. })
    }

    /// The planned backend, for admitted verdicts.
    pub fn backend(&self) -> Option<BackendId> {
        match self {
            AdmissionVerdict::Admitted { backend, .. }
            | AdmissionVerdict::Degraded { backend, .. } => Some(*backend),
            AdmissionVerdict::Refused { .. } => None,
        }
    }

    /// The pre-dispatch cost estimate, for admitted verdicts.
    pub fn cost(&self) -> Option<CostEstimate> {
        match self {
            AdmissionVerdict::Admitted { cost, .. } | AdmissionVerdict::Degraded { cost, .. } => {
                Some(*cost)
            }
            AdmissionVerdict::Refused { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_guarantee_raises_to_the_floor() {
        let policy = TenantPolicy::unlimited().with_guarantee_floor(Guarantee::PaperRatio);
        assert_eq!(
            policy.effective_guarantee(Guarantee::None),
            Guarantee::PaperRatio
        );
        assert_eq!(
            policy.effective_guarantee(Guarantee::PaperRatio),
            Guarantee::PaperRatio
        );
        // Stronger demands pass through untouched.
        assert_eq!(
            policy.effective_guarantee(Guarantee::Exact),
            Guarantee::Exact
        );
        let eps = Guarantee::EpsilonOptimal(0.1);
        assert_eq!(policy.effective_guarantee(eps), eps);
    }

    #[test]
    fn unlimited_policy_gates_nothing() {
        let policy = TenantPolicy::unlimited();
        assert_eq!(policy.max_in_flight, usize::MAX);
        assert!(policy.max_estimated_work.is_infinite());
        assert_eq!(policy.effective_guarantee(Guarantee::None), Guarantee::None);
    }

    #[test]
    fn quota_errors_display_their_context() {
        let e = QuotaError::InFlightExceeded {
            tenant: "acme".into(),
            in_flight: 9,
            limit: 8,
        };
        let msg = e.to_string();
        assert!(msg.contains("acme") && msg.contains('9') && msg.contains('8'));
        assert!(QuotaError::QueueFull { capacity: 4 }
            .to_string()
            .contains('4'));
    }

    #[test]
    fn verdict_accessors_expose_the_plan() {
        use crate::solve::CostModel;
        let cost = CostEstimate {
            work: 128.0,
            model: CostModel::Linearithmic,
        };
        let admitted = AdmissionVerdict::Admitted {
            backend: BackendId::Lpt,
            cost,
        };
        assert!(admitted.is_admitted());
        assert_eq!(admitted.backend(), Some(BackendId::Lpt));
        assert_eq!(admitted.cost(), Some(cost));
        let refused = AdmissionVerdict::Refused {
            reason: QuotaError::QueueFull { capacity: 1 },
        };
        assert!(!refused.is_admitted());
        assert_eq!(refused.backend(), None);
        assert_eq!(refused.cost(), None);
    }
}
