//! Schedules: pure assignments (mapping only) and timed schedules.
//!
//! For independent tasks the paper only needs the *assignment* `π : T → Q`
//! (Section 2.1): makespan and memory consumption are per-processor sums,
//! so start times are irrelevant. With precedence constraints the starting
//! time `σ(i)` matters and we use [`TimedSchedule`].

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::instance::Instance;
use crate::numeric::kahan_sum;
use crate::task::TaskSet;

/// A pure assignment of tasks to processors, `π : T → Q`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    proc_of: Vec<usize>,
    m: usize,
}

impl Assignment {
    /// Builds an assignment from the processor index of each task.
    pub fn new(proc_of: Vec<usize>, m: usize) -> Result<Self, ModelError> {
        if m == 0 {
            return Err(ModelError::NoProcessors);
        }
        for (task, &proc) in proc_of.iter().enumerate() {
            if proc >= m {
                return Err(ModelError::ProcessorOutOfRange { task, proc, m });
            }
        }
        Ok(Assignment { proc_of, m })
    }

    /// An assignment with every slot unassigned — used by algorithms that
    /// fill it task by task via [`Assignment::assign`]. All tasks initially
    /// map to processor 0.
    pub fn zeroed(n: usize, m: usize) -> Result<Self, ModelError> {
        if m == 0 {
            return Err(ModelError::NoProcessors);
        }
        Ok(Assignment {
            proc_of: vec![0; n],
            m,
        })
    }

    /// Number of tasks covered.
    #[inline]
    pub fn n(&self) -> usize {
        self.proc_of.len()
    }

    /// Number of processors.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Processor of task `i`.
    #[inline]
    pub fn proc_of(&self, i: usize) -> usize {
        self.proc_of[i]
    }

    /// Raw mapping.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.proc_of
    }

    /// Reassigns task `i` to processor `proc`.
    pub fn assign(&mut self, i: usize, proc: usize) -> Result<(), ModelError> {
        if proc >= self.m {
            return Err(ModelError::ProcessorOutOfRange {
                task: i,
                proc,
                m: self.m,
            });
        }
        self.proc_of[i] = proc;
        Ok(())
    }

    /// Per-processor total processing time (`load` in the paper's
    /// pseudo-code).
    pub fn loads(&self, tasks: &TaskSet) -> Vec<f64> {
        let mut loads = vec![0.0; self.m];
        for (i, &q) in self.proc_of.iter().enumerate() {
            loads[q] += tasks.get(i).p;
        }
        loads
    }

    /// Per-processor total storage (`memsize` in the paper's pseudo-code).
    pub fn memory(&self, tasks: &TaskSet) -> Vec<f64> {
        let mut mem = vec![0.0; self.m];
        for (i, &q) in self.proc_of.iter().enumerate() {
            mem[q] += tasks.get(i).s;
        }
        mem
    }

    /// Tasks assigned to each processor, preserving task order.
    pub fn tasks_per_processor(&self) -> Vec<Vec<usize>> {
        let mut per = vec![Vec::new(); self.m];
        for (i, &q) in self.proc_of.iter().enumerate() {
            per[q].push(i);
        }
        per
    }

    /// Converts the assignment into a timed schedule for *independent*
    /// tasks by executing each processor's tasks back to back in index
    /// order. Start times are irrelevant for the paper's objectives on
    /// independent tasks but are needed by the simulator and the ΣCi
    /// objective.
    pub fn into_timed(&self, tasks: &TaskSet) -> TimedSchedule {
        let mut start = vec![0.0; self.proc_of.len()];
        let mut clock = vec![0.0; self.m];
        for (i, &q) in self.proc_of.iter().enumerate() {
            start[i] = clock[q];
            clock[q] += tasks.get(i).p;
        }
        TimedSchedule {
            proc_of: self.proc_of.clone(),
            start,
            m: self.m,
        }
    }

    /// Converts the assignment into a timed schedule where each processor
    /// executes its tasks in the given global priority order (e.g. SPT).
    pub fn into_timed_ordered(&self, tasks: &TaskSet, order: &[usize]) -> TimedSchedule {
        let mut start = vec![0.0; self.proc_of.len()];
        let mut clock = vec![0.0; self.m];
        for &i in order {
            let q = self.proc_of[i];
            start[i] = clock[q];
            clock[q] += tasks.get(i).p;
        }
        TimedSchedule {
            proc_of: self.proc_of.clone(),
            start,
            m: self.m,
        }
    }
}

/// A timed schedule: processor assignment `π` plus starting times `σ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedSchedule {
    proc_of: Vec<usize>,
    start: Vec<f64>,
    m: usize,
}

impl TimedSchedule {
    /// Builds a timed schedule from the processor and start time of every
    /// task.
    pub fn new(proc_of: Vec<usize>, start: Vec<f64>, m: usize) -> Result<Self, ModelError> {
        if m == 0 {
            return Err(ModelError::NoProcessors);
        }
        if proc_of.len() != start.len() {
            return Err(ModelError::LengthMismatch {
                left: proc_of.len(),
                right: start.len(),
            });
        }
        for (task, &proc) in proc_of.iter().enumerate() {
            if proc >= m {
                return Err(ModelError::ProcessorOutOfRange { task, proc, m });
            }
        }
        for (task, &s) in start.iter().enumerate() {
            if !s.is_finite() || s < 0.0 {
                return Err(ModelError::NegativeStart { task, start: s });
            }
        }
        Ok(TimedSchedule { proc_of, start, m })
    }

    /// Builds a timed schedule without the `O(n)` validation passes, for
    /// construction sites whose invariants hold by construction (the
    /// scheduling kernel emits one schedule per run on its throughput
    /// path). Debug builds still assert the [`TimedSchedule::new`]
    /// invariants.
    pub fn new_unchecked(proc_of: Vec<usize>, start: Vec<f64>, m: usize) -> Self {
        debug_assert!(m >= 1);
        debug_assert_eq!(proc_of.len(), start.len());
        debug_assert!(proc_of.iter().all(|&q| q < m));
        debug_assert!(start.iter().all(|&s| s.is_finite() && s >= 0.0));
        TimedSchedule { proc_of, start, m }
    }

    /// Number of tasks.
    #[inline]
    pub fn n(&self) -> usize {
        self.proc_of.len()
    }

    /// Number of processors.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Processor of task `i` (`π(i)`).
    #[inline]
    pub fn proc_of(&self, i: usize) -> usize {
        self.proc_of[i]
    }

    /// Starting time of task `i` (`σ(i)`).
    #[inline]
    pub fn start(&self, i: usize) -> f64 {
        self.start[i]
    }

    /// Completion time `C_i = σ(i) + p_i`.
    #[inline]
    pub fn completion(&self, i: usize, tasks: &TaskSet) -> f64 {
        self.start[i] + tasks.get(i).p
    }

    /// The underlying assignment (dropping start times).
    pub fn assignment(&self) -> Assignment {
        Assignment {
            proc_of: self.proc_of.clone(),
            m: self.m,
        }
    }

    /// Per-processor total storage.
    pub fn memory(&self, tasks: &TaskSet) -> Vec<f64> {
        self.assignment().memory(tasks)
    }

    /// Per-processor busy time (sum of processing times assigned).
    pub fn busy(&self, tasks: &TaskSet) -> Vec<f64> {
        self.assignment().loads(tasks)
    }

    /// Completion time of the last task, `Cmax = max_i C_i`.
    pub fn cmax(&self, tasks: &TaskSet) -> f64 {
        crate::numeric::max_or_zero((0..self.n()).map(|i| self.completion(i, tasks)))
    }

    /// Sum of completion times `Σ C_i`.
    pub fn sum_completion(&self, tasks: &TaskSet) -> f64 {
        kahan_sum((0..self.n()).map(|i| self.completion(i, tasks)))
    }

    /// Tasks on each processor sorted by start time — useful for Gantt
    /// rendering and overlap checks.
    pub fn timeline(&self) -> Vec<Vec<usize>> {
        let mut per: Vec<Vec<usize>> = vec![Vec::new(); self.m];
        for (i, &q) in self.proc_of.iter().enumerate() {
            per[q].push(i);
        }
        for lane in &mut per {
            lane.sort_by(|&a, &b| crate::numeric::total_cmp(self.start[a], self.start[b]));
        }
        per
    }

    /// Idle time of the schedule: `m · Cmax − Σ p_i` measured against this
    /// schedule's own makespan.
    pub fn total_idle(&self, tasks: &TaskSet) -> f64 {
        self.m as f64 * self.cmax(tasks) - tasks.total_work()
    }
}

/// Convenience: evaluate a schedule produced for a given instance.
impl TimedSchedule {
    /// Makespan against the instance's task set.
    pub fn cmax_for(&self, inst: &Instance) -> f64 {
        self.cmax(inst.tasks())
    }

    /// Maximum cumulative memory against the instance's task set.
    pub fn mmax_for(&self, inst: &Instance) -> f64 {
        crate::numeric::max_or_zero(self.memory(inst.tasks()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSet;

    fn tasks() -> TaskSet {
        TaskSet::from_ps(&[1.0, 0.5, 0.5], &[0.1, 1.0, 1.0]).unwrap()
    }

    #[test]
    fn assignment_validates_processor_range() {
        assert!(Assignment::new(vec![0, 1, 2], 2).is_err());
        assert!(Assignment::new(vec![0, 1, 1], 2).is_ok());
        assert!(Assignment::new(vec![], 0).is_err());
    }

    #[test]
    fn loads_and_memory_are_per_processor_sums() {
        let ts = tasks();
        let asg = Assignment::new(vec![0, 1, 1], 2).unwrap();
        let loads = asg.loads(&ts);
        let mem = asg.memory(&ts);
        assert!((loads[0] - 1.0).abs() < 1e-12);
        assert!((loads[1] - 1.0).abs() < 1e-12);
        assert!((mem[0] - 0.1).abs() < 1e-12);
        assert!((mem[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn into_timed_packs_tasks_back_to_back() {
        let ts = tasks();
        let asg = Assignment::new(vec![0, 0, 1], 2).unwrap();
        let timed = asg.into_timed(&ts);
        assert_eq!(timed.start(0), 0.0);
        assert!((timed.start(1) - 1.0).abs() < 1e-12);
        assert_eq!(timed.start(2), 0.0);
        assert!((timed.cmax(&ts) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn into_timed_ordered_respects_priority_order() {
        let ts = TaskSet::from_ps(&[2.0, 1.0], &[1.0, 1.0]).unwrap();
        let asg = Assignment::new(vec![0, 0], 1).unwrap();
        // SPT order: task 1 (p=1) before task 0 (p=2).
        let timed = asg.into_timed_ordered(&ts, &[1, 0]);
        assert_eq!(timed.start(1), 0.0);
        assert!((timed.start(0) - 1.0).abs() < 1e-12);
        // Sum of completion times 1 + 3 = 4, better than the FIFO order's 2 + 3 = 5.
        assert!((timed.sum_completion(&ts) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn timed_schedule_validates_inputs() {
        assert!(TimedSchedule::new(vec![0], vec![-1.0], 1).is_err());
        assert!(TimedSchedule::new(vec![0, 1], vec![0.0], 2).is_err());
        assert!(TimedSchedule::new(vec![3], vec![0.0], 2).is_err());
        assert!(TimedSchedule::new(vec![0], vec![0.0], 1).is_ok());
    }

    #[test]
    fn timeline_sorts_by_start_time() {
        let ts = tasks();
        let sched = TimedSchedule::new(vec![0, 0, 1], vec![0.5, 0.0, 0.0], 2).unwrap();
        let tl = sched.timeline();
        assert_eq!(tl[0], vec![1, 0]);
        assert_eq!(tl[1], vec![2]);
        let _ = ts; // silence unused in case of future edits
    }

    #[test]
    fn idle_time_accounts_for_all_processors() {
        let ts = TaskSet::from_ps(&[2.0, 1.0], &[1.0, 1.0]).unwrap();
        let asg = Assignment::new(vec![0, 1], 2).unwrap();
        let timed = asg.into_timed(&ts);
        // Cmax = 2, total work = 3, so idle = 2*2 - 3 = 1.
        assert!((timed.total_idle(&ts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn assignment_round_trips_through_timed_schedule() {
        let ts = tasks();
        let asg = Assignment::new(vec![1, 0, 1], 2).unwrap();
        let timed = asg.into_timed(&ts);
        assert_eq!(timed.assignment(), asg);
    }

    #[test]
    fn zeroed_assignment_then_assign() {
        let mut asg = Assignment::zeroed(3, 2).unwrap();
        asg.assign(2, 1).unwrap();
        assert_eq!(asg.proc_of(2), 1);
        assert!(asg.assign(0, 5).is_err());
    }
}
