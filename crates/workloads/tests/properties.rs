//! Property-based tests of the workload generators: reproducibility,
//! structural validity, the advertised correlation structure of the
//! random distributions, and the exact geometry of the paper's
//! adversarial instances.

use proptest::prelude::*;

use sws_dag::analysis::structurally_sound;
use sws_model::bounds::{cmax_lower_bound, mmax_lower_bound};
use sws_workloads::adversarial::{
    lemma1_instance, lemma2_instance, lemma2_pareto_point, lemma3_instance,
};
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::grid::grid_workload;
use sws_workloads::random::{random_instance, RandomInstanceConfig};
use sws_workloads::rng::{derive_seed, seeded_rng};
use sws_workloads::soc::soc_workload;
use sws_workloads::TaskDistribution;

/// Pearson correlation coefficient between two equally long samples.
fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Identical seeds reproduce identical instances; different stream ids
    /// derived from the same base seed give different ones.
    #[test]
    fn generation_is_deterministic_per_seed(
        n in 5usize..60,
        m in 2usize..8,
        seed in 0u64..10_000,
    ) {
        for dist in TaskDistribution::all() {
            let a = random_instance(n, m, dist, &mut seeded_rng(seed));
            let b = random_instance(n, m, dist, &mut seeded_rng(seed));
            prop_assert_eq!(&a, &b);
        }
        let d1 = derive_seed(seed, 1);
        let d2 = derive_seed(seed, 2);
        prop_assert_ne!(d1, d2);
    }

    /// Every distribution produces strictly positive, finite costs of the
    /// requested cardinality, and the instance-level aggregates are sane.
    #[test]
    fn random_instances_are_well_formed(
        n in 1usize..80,
        m in 1usize..10,
        seed in 0u64..10_000,
    ) {
        for dist in TaskDistribution::all() {
            let inst = random_instance(n, m, dist, &mut seeded_rng(seed));
            prop_assert_eq!(inst.n(), n);
            prop_assert_eq!(inst.m(), m);
            for i in 0..n {
                prop_assert!(inst.p(i) > 0.0 && inst.p(i).is_finite());
                prop_assert!(inst.s(i) > 0.0 && inst.s(i).is_finite());
            }
            prop_assert!(cmax_lower_bound(inst.tasks(), m) > 0.0);
            prop_assert!(mmax_lower_bound(inst.tasks(), m) > 0.0);
        }
    }

    /// The correlated / anti-correlated distributions really produce the
    /// advertised sign of correlation on reasonably large samples.
    #[test]
    fn correlation_structure_matches_the_labels(seed in 0u64..2_000) {
        let n = 300;
        let gather = |dist: TaskDistribution| {
            let inst = random_instance(n, 4, dist, &mut seeded_rng(seed));
            let p: Vec<f64> = (0..n).map(|i| inst.p(i)).collect();
            let s: Vec<f64> = (0..n).map(|i| inst.s(i)).collect();
            correlation(&p, &s)
        };
        prop_assert!(gather(TaskDistribution::Correlated) > 0.5);
        prop_assert!(gather(TaskDistribution::AntiCorrelated) < -0.5);
        prop_assert!(gather(TaskDistribution::Uncorrelated).abs() < 0.4);
    }

    /// Custom ranges are respected by the configuration-level generator.
    #[test]
    fn configured_ranges_are_respected(
        n in 1usize..50,
        lo in 1.0f64..5.0,
        span in 1.0f64..50.0,
        seed in 0u64..5_000,
    ) {
        let cfg = RandomInstanceConfig {
            n,
            m: 3,
            distribution: TaskDistribution::Uncorrelated,
            p_range: (lo, lo + span),
            s_range: (lo, lo + span),
        };
        let inst = cfg.generate(&mut seeded_rng(seed));
        for i in 0..n {
            prop_assert!(inst.p(i) >= lo && inst.p(i) <= lo + span);
            prop_assert!(inst.s(i) >= lo && inst.s(i) <= lo + span);
        }
    }

    /// Every DAG workload family yields a structurally sound graph with
    /// positive costs, roughly sized to the request, reproducibly.
    #[test]
    fn dag_workloads_are_sound_and_reproducible(
        target in 10usize..120,
        m in 2usize..8,
        seed in 0u64..5_000,
    ) {
        for family in DagFamily::all() {
            let a = dag_workload(family, target, m, TaskDistribution::Uncorrelated,
                &mut seeded_rng(seed));
            let b = dag_workload(family, target, m, TaskDistribution::Uncorrelated,
                &mut seeded_rng(seed));
            prop_assert_eq!(&a, &b, "family {} not reproducible", family.label());
            prop_assert!(structurally_sound(a.graph()));
            prop_assert!(a.n() >= 4);
            prop_assert_eq!(a.m(), m);
            for i in 0..a.n() {
                prop_assert!(a.tasks().get(i).p > 0.0);
                prop_assert!(a.tasks().get(i).s > 0.0);
            }
        }
    }

    /// The Lemma 2 adversarial family has the exact analytic geometry the
    /// paper derives: km + m − 1 tasks, total work m, unit-memory heavy
    /// tasks and the stated Pareto points.
    #[test]
    fn lemma2_family_matches_the_paper(m in 2usize..6, k in 2usize..8) {
        let eps = 1e-6;
        let inst = lemma2_instance(m, k, eps);
        prop_assert_eq!(inst.n(), k * m + m - 1);
        prop_assert!((inst.total_work() - m as f64).abs() < 1e-9);
        prop_assert!((inst.total_storage() - (k * m) as f64 - (m - 1) as f64 * eps).abs() < 1e-6);
        // Pareto point formulas: makespan grows in i, memory shrinks in i.
        let mut last_c = 0.0;
        let mut last_m = f64::INFINITY;
        for i in 0..=k {
            let (c, mem) = lemma2_pareto_point(m, k, i, eps);
            prop_assert!(c >= last_c);
            prop_assert!(mem <= last_m + 1e-12);
            last_c = c;
            last_m = mem;
        }
        // i = 0: memory k + (m-1)k = km; i = k: memory k + eps.
        prop_assert!((lemma2_pareto_point(m, k, 0, eps).1 - (k * m) as f64).abs() < 1e-9);
        prop_assert!((lemma2_pareto_point(m, k, k, eps).1 - (k as f64 + eps)).abs() < 1e-9);
    }
}

#[test]
fn soc_and_grid_workloads_have_the_advertised_shape() {
    let mut rng = seeded_rng(99);
    let soc = soc_workload(4, &mut rng);
    assert_eq!(soc.m(), 4);
    assert!(
        soc.n() >= 8,
        "a SoC image has a reasonable number of kernels"
    );
    for i in 0..soc.n() {
        assert!(soc.p(i) > 0.0 && soc.s(i) > 0.0);
    }
    let grid = grid_workload(16, &mut rng);
    assert_eq!(grid.m(), 16);
    assert!(
        grid.n() > grid.m(),
        "a grid batch has more jobs than workers"
    );
}

#[test]
fn adversarial_instances_match_their_stated_optima() {
    let eps = 1e-3;
    let l1 = lemma1_instance(eps);
    assert!((cmax_lower_bound(l1.tasks(), 2) - 1.0).abs() < 1e-9);
    let l3 = lemma3_instance(0.25);
    assert!((l3.total_work() - 2.0).abs() < 1e-9);
    assert!((l3.total_storage() - 2.0).abs() < 1e-9);
    // Lemma 2: the optimal makespan is 1 (m units of work over m machines).
    let l2 = lemma2_instance(3, 4, eps);
    assert!(cmax_lower_bound(l2.tasks(), 3) <= 1.0 + 1e-9);
    assert!(mmax_lower_bound(l2.tasks(), 3) <= 4.0 + 1.0);
}
