//! # sws-workloads
//!
//! Workload generators for the evaluation of *Scheduling with Storage
//! Constraints*:
//!
//! * [`adversarial`] — the paper's own instances: the Section 4.1
//!   two-processor instance behind Figure 1 and Lemma 1, the Section 4.2
//!   `m`-processor family behind Lemma 2, and the Section 4.3 instance
//!   behind Figure 2 and Lemma 3;
//! * [`random`] — random independent-task instances with several
//!   `(p, s)` joint distributions (uniform, correlated, anti-correlated,
//!   bimodal), since the relationship between processing time and memory
//!   is exactly what the SBO∆ threshold exploits;
//! * [`soc`] — a multi-System-on-Chip-style workload (many small kernels
//!   with code-size-dominated storage, a few large DSP kernels), the
//!   embedded motivation of the paper's introduction;
//! * [`grid`] — a grid-computing-style workload (long jobs, result files
//!   of loosely related size), the other motivating scenario;
//! * [`dagsets`] — precedence-constrained workloads: structural
//!   generators from `sws-dag` combined with randomized costs;
//! * [`rng`] — deterministic seeding helpers so every experiment is
//!   reproducible.

#![forbid(unsafe_code)]

pub mod adversarial;
pub mod dagsets;
pub mod deltas;
pub mod grid;
pub mod random;
pub mod rng;
pub mod soc;

pub use adversarial::{lemma1_instance, lemma2_instance, lemma3_instance};
pub use deltas::{delta_stream, DeltaStreamConfig};
pub use random::{RandomInstanceConfig, TaskDistribution};
pub use rng::seeded_rng;
