//! Random independent-task instances with controllable correlation
//! between processing time and storage requirement.
//!
//! The paper stresses that "the processing time of every task is not
//! related to the memory it uses"; how related they actually are changes
//! how hard the bi-objective trade-off is, so the evaluation sweeps four
//! joint distributions:
//!
//! * **Uncorrelated** — `p` and `s` drawn independently,
//! * **Correlated** — `s ≈ α·p` with small noise (easy: one good schedule
//!   tends to be good for both objectives),
//! * **Anti-correlated** — long tasks use little memory and vice versa
//!   (the regime where the SBO∆ threshold rule matters most),
//! * **Bimodal** — a few huge tasks among many small ones on both axes.

use rand::Rng;

use sws_model::task::{Task, TaskSet};
use sws_model::Instance;

use crate::rng::WorkloadRng;

/// Joint distribution of `(p_i, s_i)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskDistribution {
    /// `p` and `s` independently uniform.
    Uncorrelated,
    /// `s` proportional to `p` with ±20 % multiplicative noise.
    Correlated,
    /// `s` inversely related to `p` with ±20 % multiplicative noise.
    AntiCorrelated,
    /// 10 % of tasks are "huge" (×10) on each axis independently.
    Bimodal,
}

impl TaskDistribution {
    /// All distributions, in the order used by the experiment tables.
    pub fn all() -> [TaskDistribution; 4] {
        [
            TaskDistribution::Uncorrelated,
            TaskDistribution::Correlated,
            TaskDistribution::AntiCorrelated,
            TaskDistribution::Bimodal,
        ]
    }

    /// A short label for experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            TaskDistribution::Uncorrelated => "uncorrelated",
            TaskDistribution::Correlated => "correlated",
            TaskDistribution::AntiCorrelated => "anticorrelated",
            TaskDistribution::Bimodal => "bimodal",
        }
    }
}

/// Configuration of a random instance.
#[derive(Debug, Clone, Copy)]
pub struct RandomInstanceConfig {
    /// Number of tasks.
    pub n: usize,
    /// Number of processors.
    pub m: usize,
    /// Joint distribution of `(p, s)`.
    pub distribution: TaskDistribution,
    /// Range of the base uniform draw for processing times.
    pub p_range: (f64, f64),
    /// Range of the base uniform draw for storage requirements.
    pub s_range: (f64, f64),
}

impl RandomInstanceConfig {
    /// A reasonable default configuration for the experiments: `p` and `s`
    /// in `[1, 100]`.
    pub fn new(n: usize, m: usize, distribution: TaskDistribution) -> Self {
        RandomInstanceConfig {
            n,
            m,
            distribution,
            p_range: (1.0, 100.0),
            s_range: (1.0, 100.0),
        }
    }

    /// Draws one task.
    fn draw_task(&self, rng: &mut WorkloadRng) -> Task {
        let (plo, phi) = self.p_range;
        let (slo, shi) = self.s_range;
        let noise = |rng: &mut WorkloadRng| rng.gen_range(0.8..1.2);
        match self.distribution {
            TaskDistribution::Uncorrelated => {
                Task::new_unchecked(rng.gen_range(plo..phi), rng.gen_range(slo..shi))
            }
            TaskDistribution::Correlated => {
                let p = rng.gen_range(plo..phi);
                // Map p's relative position into the s range, then jitter.
                let rel = (p - plo) / (phi - plo);
                let s = (slo + rel * (shi - slo)) * noise(rng);
                Task::new_unchecked(p, s.max(slo * 0.5))
            }
            TaskDistribution::AntiCorrelated => {
                let p = rng.gen_range(plo..phi);
                let rel = (p - plo) / (phi - plo);
                let s = (slo + (1.0 - rel) * (shi - slo)) * noise(rng);
                Task::new_unchecked(p, s.max(slo * 0.5))
            }
            TaskDistribution::Bimodal => {
                let base_p = rng.gen_range(plo..phi * 0.2);
                let base_s = rng.gen_range(slo..shi * 0.2);
                let p = if rng.gen_bool(0.1) {
                    base_p * 10.0
                } else {
                    base_p
                };
                let s = if rng.gen_bool(0.1) {
                    base_s * 10.0
                } else {
                    base_s
                };
                Task::new_unchecked(p, s)
            }
        }
    }

    /// Generates the instance.
    pub fn generate(&self, rng: &mut WorkloadRng) -> Instance {
        let tasks: Vec<Task> = (0..self.n).map(|_| self.draw_task(rng)).collect();
        Instance::new(TaskSet::new(tasks).expect("draws are positive"), self.m)
            .expect("m > 0 by configuration")
    }
}

/// Convenience helper: generate a random instance with the default ranges.
pub fn random_instance(
    n: usize,
    m: usize,
    distribution: TaskDistribution,
    rng: &mut WorkloadRng,
) -> Instance {
    RandomInstanceConfig::new(n, m, distribution).generate(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn generates_the_requested_shape() {
        let mut rng = seeded_rng(1);
        for dist in TaskDistribution::all() {
            let inst = random_instance(50, 4, dist, &mut rng);
            assert_eq!(inst.n(), 50);
            assert_eq!(inst.m(), 4);
            for i in 0..inst.n() {
                assert!(inst.p(i) > 0.0);
                assert!(inst.s(i) > 0.0);
            }
        }
    }

    #[test]
    fn correlated_tasks_track_processing_time() {
        let mut rng = seeded_rng(2);
        let inst = random_instance(400, 4, TaskDistribution::Correlated, &mut rng);
        let corr = correlation(&inst);
        assert!(
            corr > 0.8,
            "expected strong positive correlation, got {corr}"
        );
    }

    #[test]
    fn anticorrelated_tasks_oppose_processing_time() {
        let mut rng = seeded_rng(3);
        let inst = random_instance(400, 4, TaskDistribution::AntiCorrelated, &mut rng);
        let corr = correlation(&inst);
        assert!(
            corr < -0.8,
            "expected strong negative correlation, got {corr}"
        );
    }

    #[test]
    fn uncorrelated_tasks_have_weak_correlation() {
        let mut rng = seeded_rng(4);
        let inst = random_instance(800, 4, TaskDistribution::Uncorrelated, &mut rng);
        let corr = correlation(&inst);
        assert!(corr.abs() < 0.2, "expected weak correlation, got {corr}");
    }

    #[test]
    fn bimodal_has_heavy_outliers() {
        let mut rng = seeded_rng(5);
        let inst = random_instance(500, 4, TaskDistribution::Bimodal, &mut rng);
        let stats = inst.stats();
        // Outliers push the maximum far above the mean.
        assert!(stats.max_p > 4.0 * stats.mean_p);
        assert!(stats.max_s > 4.0 * stats.mean_s);
    }

    #[test]
    fn generation_is_reproducible() {
        let a = random_instance(30, 3, TaskDistribution::Uncorrelated, &mut seeded_rng(9));
        let b = random_instance(30, 3, TaskDistribution::Uncorrelated, &mut seeded_rng(9));
        assert_eq!(a, b);
    }

    fn correlation(inst: &Instance) -> f64 {
        let n = inst.n() as f64;
        let mean_p = inst.total_work() / n;
        let mean_s = inst.total_storage() / n;
        let mut cov = 0.0;
        let mut var_p = 0.0;
        let mut var_s = 0.0;
        for i in 0..inst.n() {
            let dp = inst.p(i) - mean_p;
            let ds = inst.s(i) - mean_s;
            cov += dp * ds;
            var_p += dp * dp;
            var_s += ds * ds;
        }
        cov / (var_p.sqrt() * var_s.sqrt())
    }
}
