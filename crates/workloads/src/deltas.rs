//! Instance-mutation event streams for the incremental replan engine.
//!
//! The paper's schedulers solve frozen instances; the replan engine
//! (`sws_core::replan`) serves *mutating* ones. This module generates
//! the mutation streams the differential suites and the replan bench
//! replay: sequences of [`CsrDelta`]s — task arrivals with sampled
//! predecessors and SoC-flavoured costs (the firmware-image units of
//! [`crate::soc`]), completions in execution-plausible order, and cost
//! re-estimates — plus an adversarial mode that draws the signed zeros
//! and rank-saturating magnitudes the quantized `KeyTable` has to
//! survive.
//!
//! Streams are *stateful by construction*: an arrival's predecessor set
//! is sampled from the tasks present at that point of the stream, a
//! completion always targets the lowest not-yet-completed index (tasks
//! complete roughly in schedule order), and a re-estimate never targets
//! a completed task (the engine refuses those by contract). Every
//! emitted delta therefore passes `CsrDelta::validate` against the
//! instance as mutated by its prefix.

use rand::Rng;

use sws_dag::CsrDelta;

use crate::rng::WorkloadRng;

/// Shape of a delta stream: relative event-kind weights plus the cost
/// model of arrivals and re-estimates.
#[derive(Debug, Clone, Copy)]
pub struct DeltaStreamConfig {
    /// Relative weight of task arrivals.
    pub arrival_weight: u32,
    /// Relative weight of task completions.
    pub completion_weight: u32,
    /// Relative weight of cost re-estimates.
    pub recost_weight: u32,
    /// Largest predecessor count sampled for an arrival (each arrival
    /// draws `0..=max_preds` distinct predecessors from the live
    /// tasks).
    pub max_preds: usize,
    /// Mix in adversarial costs: signed zeros (`-0.0`) and
    /// rank-saturating magnitudes (≥ 1e290, far beyond any quantized
    /// key table's range) on roughly one draw in eight.
    pub adversarial_costs: bool,
}

impl DeltaStreamConfig {
    /// The online-serving shape: arrivals and completions only, the
    /// 500-event stream of the replan bench.
    pub fn arrivals_and_completions() -> Self {
        DeltaStreamConfig {
            arrival_weight: 1,
            completion_weight: 1,
            recost_weight: 0,
            max_preds: 3,
            adversarial_costs: false,
        }
    }

    /// All three event kinds, benign costs.
    pub fn mixed() -> Self {
        DeltaStreamConfig {
            arrival_weight: 2,
            completion_weight: 1,
            recost_weight: 2,
            max_preds: 3,
            adversarial_costs: false,
        }
    }

    /// [`DeltaStreamConfig::mixed`] with the adversarial cost draws
    /// switched on — the differential suite's hostile mode.
    pub fn adversarial() -> Self {
        DeltaStreamConfig {
            adversarial_costs: true,
            ..Self::mixed()
        }
    }

    fn total_weight(&self) -> u32 {
        self.arrival_weight + self.completion_weight + self.recost_weight
    }
}

/// One SoC-flavoured `(p, s)` draw (milliseconds, kilobytes): mostly
/// small control kernels, occasionally a DSP-sized one — the
/// [`crate::soc`] families, without the blob tail that would dominate
/// short streams. Adversarial mode replaces roughly one draw in eight
/// with a signed zero or a rank-saturating magnitude.
fn draw_costs(cfg: &DeltaStreamConfig, rng: &mut WorkloadRng) -> (f64, f64) {
    if cfg.adversarial_costs {
        match rng.gen_range(0..8) {
            0 => return (rng.gen_range(0.1..2.0), -0.0),
            1 => return (0.0, rng.gen_range(4.0..64.0)),
            2 => return (rng.gen_range(0.1..2.0), 1e290 * rng.gen_range(1.0..9.0)),
            3 => return (1e290 * rng.gen_range(1.0..9.0), rng.gen_range(4.0..64.0)),
            _ => {}
        }
    }
    if rng.gen_range(0..8) == 0 {
        (rng.gen_range(10.0..80.0), rng.gen_range(16.0..128.0))
    } else {
        (rng.gen_range(0.1..2.0), rng.gen_range(4.0..64.0))
    }
}

/// Generates `events` deltas against an instance that currently holds
/// `n0` tasks (none completed). See the module docs for the statefulness
/// guarantees; the stream is deterministic in `(n0, events, cfg, rng
/// seed)`.
pub fn delta_stream(
    n0: usize,
    events: usize,
    cfg: &DeltaStreamConfig,
    rng: &mut WorkloadRng,
) -> Vec<CsrDelta> {
    assert!(
        cfg.total_weight() > 0,
        "at least one event kind must have weight"
    );
    let mut out = Vec::with_capacity(events);
    let mut n = n0;
    // Tasks below this index are completed (completions advance it).
    let mut completed = 0usize;
    for _ in 0..events {
        let mut pick = rng.gen_range(0..cfg.total_weight());
        let kind = if pick < cfg.arrival_weight {
            0
        } else {
            pick -= cfg.arrival_weight;
            if pick < cfg.completion_weight && completed < n {
                1
            } else if cfg.recost_weight > 0 && completed < n {
                2
            } else {
                0 // nothing live to complete or re-estimate: arrive instead
            }
        };
        match kind {
            0 => {
                let (p, s) = draw_costs(cfg, rng);
                let want = if n == 0 {
                    0
                } else {
                    rng.gen_range(0..=cfg.max_preds.min(n))
                };
                let mut preds: Vec<u32> = Vec::with_capacity(want);
                while preds.len() < want {
                    let u = rng.gen_range(0..n) as u32;
                    if !preds.contains(&u) {
                        preds.push(u);
                    }
                }
                out.push(CsrDelta::AddTask { preds, p, s });
                n += 1;
            }
            1 => {
                out.push(CsrDelta::CompleteTask {
                    task: completed as u32,
                });
                completed += 1;
            }
            _ => {
                let task = rng.gen_range(completed..n) as u32;
                let (p, s) = draw_costs(cfg, rng);
                let (p, s) = match rng.gen_range(0..3) {
                    0 => (Some(p), None),
                    1 => (None, Some(s)),
                    _ => (Some(p), Some(s)),
                };
                out.push(CsrDelta::Recost { task, p, s });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dagsets::{dag_workload, DagFamily};
    use crate::random::TaskDistribution;
    use crate::rng::seeded_rng;

    fn base_csr(n: usize) -> sws_dag::CsrDag {
        dag_workload(
            DagFamily::LayeredRandom,
            n,
            4,
            TaskDistribution::Uncorrelated,
            &mut seeded_rng(7),
        )
        .csr()
    }

    #[test]
    fn every_delta_validates_against_the_mutated_instance() {
        for cfg in [
            DeltaStreamConfig::arrivals_and_completions(),
            DeltaStreamConfig::mixed(),
            DeltaStreamConfig::adversarial(),
        ] {
            let mut csr = base_csr(40);
            let stream = delta_stream(csr.n(), 200, &cfg, &mut seeded_rng(11));
            assert_eq!(stream.len(), 200);
            for (k, delta) in stream.iter().enumerate() {
                delta
                    .validate(csr.n())
                    .unwrap_or_else(|e| panic!("event {k} invalid: {e}"));
                csr.apply_delta(delta).unwrap();
            }
        }
    }

    #[test]
    fn streams_are_deterministic_in_the_seed() {
        let a = delta_stream(10, 64, &DeltaStreamConfig::mixed(), &mut seeded_rng(3));
        let b = delta_stream(10, 64, &DeltaStreamConfig::mixed(), &mut seeded_rng(3));
        assert_eq!(a, b);
        let c = delta_stream(10, 64, &DeltaStreamConfig::mixed(), &mut seeded_rng(4));
        assert_ne!(a, c);
    }

    #[test]
    fn completions_never_target_a_completed_or_future_task() {
        let stream = delta_stream(5, 300, &DeltaStreamConfig::mixed(), &mut seeded_rng(99));
        let mut n = 5u32;
        let mut completed = 0u32;
        for delta in &stream {
            match delta {
                CsrDelta::AddTask { .. } => n += 1,
                CsrDelta::CompleteTask { task } => {
                    assert_eq!(*task, completed, "completions advance in order");
                    completed += 1;
                }
                CsrDelta::Recost { task, .. } => {
                    assert!(*task >= completed && *task < n);
                }
            }
        }
    }

    #[test]
    fn adversarial_streams_carry_signed_zeros_and_saturating_costs() {
        let stream = delta_stream(
            20,
            600,
            &DeltaStreamConfig::adversarial(),
            &mut seeded_rng(21),
        );
        let costs: Vec<(f64, f64)> = stream
            .iter()
            .filter_map(|d| match d {
                CsrDelta::AddTask { p, s, .. } => Some((*p, *s)),
                CsrDelta::Recost { p, s, .. } => Some((p.unwrap_or(1.0), s.unwrap_or(1.0))),
                CsrDelta::CompleteTask { .. } => None,
            })
            .collect();
        assert!(
            costs.iter().any(|&(_, s)| s == 0.0 && s.is_sign_negative()),
            "expected a -0.0 storage draw"
        );
        assert!(
            costs.iter().any(|&(p, s)| p >= 1e290 || s >= 1e290),
            "expected a rank-saturating magnitude"
        );
    }
}
