//! Grid-computing-style workload.
//!
//! The paper's other motivation is scientific computation on grids where
//! intermediate *results* must be stored on the worker that produced them
//! (the ATLAS production example of the introduction). Jobs are long,
//! their output sizes are heavy-tailed, and mean completion time matters
//! (Section 5.2's third objective exists for exactly this scenario).

use rand::Rng;

use sws_model::task::{Task, TaskSet};
use sws_model::Instance;

use crate::rng::WorkloadRng;

/// Configuration of the grid workload.
#[derive(Debug, Clone, Copy)]
pub struct GridWorkloadConfig {
    /// Number of analysis jobs.
    pub jobs: usize,
    /// Number of worker nodes.
    pub workers: usize,
    /// Shape parameter of the heavy-tailed output-size distribution
    /// (larger = heavier tail). Must be positive.
    pub tail: f64,
}

impl GridWorkloadConfig {
    /// A default production-batch-sized workload.
    pub fn default_batch(workers: usize) -> Self {
        GridWorkloadConfig {
            jobs: 120,
            workers,
            tail: 1.5,
        }
    }

    /// Generates the instance. Units: minutes of runtime, gigabytes of
    /// output.
    pub fn generate(&self, rng: &mut WorkloadRng) -> Instance {
        assert!(self.tail > 0.0, "tail parameter must be positive");
        let mut tasks = Vec::with_capacity(self.jobs);
        for _ in 0..self.jobs {
            // Runtime: log-uniform between 5 minutes and 8 hours
            // (5 · 96^u for u uniform in [0, 1)).
            let runtime = 5.0 * (96.0f64).powf(rng.gen_range(0.0..1.0));
            // Output size: Pareto-like heavy tail, 0.5–~200 GB.
            let u: f64 = rng.gen_range(0.0001..1.0);
            let output = 0.5 * u.powf(-1.0 / self.tail).min(400.0);
            tasks.push(Task::new_unchecked(runtime, output));
        }
        Instance::new(
            TaskSet::new(tasks).expect("draws are positive"),
            self.workers,
        )
        .expect("workers > 0")
    }
}

/// Convenience: the default grid batch.
pub fn grid_workload(workers: usize, rng: &mut WorkloadRng) -> Instance {
    GridWorkloadConfig::default_batch(workers).generate(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn default_batch_shape() {
        let mut rng = seeded_rng(21);
        let inst = grid_workload(8, &mut rng);
        assert_eq!(inst.n(), 120);
        assert_eq!(inst.m(), 8);
        for i in 0..inst.n() {
            assert!(inst.p(i) >= 5.0 - 1e-9);
            assert!(inst.p(i) <= 5.0 * 96.0 + 1e-9);
            assert!(inst.s(i) >= 0.5 - 1e-9);
            assert!(inst.s(i) <= 200.0 + 1e-9);
        }
    }

    #[test]
    fn output_sizes_are_heavy_tailed() {
        let mut rng = seeded_rng(22);
        let inst = GridWorkloadConfig {
            jobs: 1000,
            workers: 8,
            tail: 1.2,
        }
        .generate(&mut rng);
        let stats = inst.stats();
        // Heavy tail: the max is much larger than the mean.
        assert!(stats.max_s > 5.0 * stats.mean_s);
    }

    #[test]
    fn reproducible_generation() {
        let a = grid_workload(4, &mut seeded_rng(8));
        let b = grid_workload(4, &mut seeded_rng(8));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn non_positive_tail_is_rejected() {
        let mut rng = seeded_rng(1);
        let _ = GridWorkloadConfig {
            jobs: 10,
            workers: 2,
            tail: 0.0,
        }
        .generate(&mut rng);
    }
}
