//! Deterministic random-number-generator helpers.
//!
//! Every experiment of the reproduction seeds its generator explicitly so
//! figures and tables can be regenerated bit for bit.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The deterministic generator used throughout the workload crate.
pub type WorkloadRng = ChaCha8Rng;

/// Creates a deterministic generator from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> WorkloadRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives a child seed from a base seed and a stream index, so sweeps can
/// give every configuration an independent but reproducible stream.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    // SplitMix64 finalizer — cheap, well-distributed, and stable across
    // platforms.
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derived_seeds_are_distinct_per_stream() {
        let seeds: Vec<u64> = (0..100).map(|i| derive_seed(7, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(123, 45), derive_seed(123, 45));
        assert_ne!(derive_seed(123, 45), derive_seed(124, 45));
    }
}
