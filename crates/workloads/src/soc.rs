//! Multi-System-on-Chip-style workload.
//!
//! The paper's introduction motivates the memory objective with embedded
//! multi-SoC systems that store *instruction code* per processor: code
//! replication makes cumulative code size the scarce resource. This
//! generator models a firmware image build:
//!
//! * many small control kernels — short runtime, small-but-not-negligible
//!   code (the code/runtime ratio is high, so SBO∆ wants them scheduled
//!   memory-first),
//! * a few DSP/codec kernels — long runtime, moderate code size,
//! * optional shared-library style tasks — negligible runtime, large code
//!   footprint (configuration tables, neural-network weights).

use rand::Rng;

use sws_model::task::{Task, TaskSet};
use sws_model::Instance;

use crate::rng::WorkloadRng;

/// Configuration of the SoC workload.
#[derive(Debug, Clone, Copy)]
pub struct SocWorkloadConfig {
    /// Number of small control kernels.
    pub control_kernels: usize,
    /// Number of DSP/codec kernels.
    pub dsp_kernels: usize,
    /// Number of table/weight blobs (zero-ish runtime, big footprint).
    pub data_blobs: usize,
    /// Number of SoC processors.
    pub processors: usize,
}

impl SocWorkloadConfig {
    /// A default firmware-image-sized workload.
    pub fn default_image(processors: usize) -> Self {
        SocWorkloadConfig {
            control_kernels: 60,
            dsp_kernels: 8,
            data_blobs: 6,
            processors,
        }
    }

    /// Generates the instance. Units: milliseconds of runtime, kilobytes
    /// of code/storage.
    pub fn generate(&self, rng: &mut WorkloadRng) -> Instance {
        let mut tasks =
            Vec::with_capacity(self.control_kernels + self.dsp_kernels + self.data_blobs);
        for _ in 0..self.control_kernels {
            // 0.1–2 ms of work, 4–64 KB of code.
            tasks.push(Task::new_unchecked(
                rng.gen_range(0.1..2.0),
                rng.gen_range(4.0..64.0),
            ));
        }
        for _ in 0..self.dsp_kernels {
            // 10–80 ms of work, 16–128 KB of code.
            tasks.push(Task::new_unchecked(
                rng.gen_range(10.0..80.0),
                rng.gen_range(16.0..128.0),
            ));
        }
        for _ in 0..self.data_blobs {
            // ~0 runtime, 128–1024 KB of constant data.
            tasks.push(Task::new_unchecked(
                rng.gen_range(0.01..0.1),
                rng.gen_range(128.0..1024.0),
            ));
        }
        Instance::new(
            TaskSet::new(tasks).expect("draws are positive"),
            self.processors,
        )
        .expect("processors > 0")
    }
}

/// Convenience: the default SoC workload.
pub fn soc_workload(processors: usize, rng: &mut WorkloadRng) -> Instance {
    SocWorkloadConfig::default_image(processors).generate(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn default_image_has_the_expected_mix() {
        let mut rng = seeded_rng(11);
        let inst = soc_workload(4, &mut rng);
        assert_eq!(inst.n(), 60 + 8 + 6);
        assert_eq!(inst.m(), 4);
    }

    #[test]
    fn data_blobs_dominate_storage_but_not_runtime() {
        let mut rng = seeded_rng(12);
        let cfg = SocWorkloadConfig {
            control_kernels: 10,
            dsp_kernels: 2,
            data_blobs: 3,
            processors: 2,
        };
        let inst = cfg.generate(&mut rng);
        let stats = inst.stats();
        // The largest storage requirement (a blob) is far above the mean.
        assert!(stats.max_s > 2.0 * stats.mean_s);
        // The largest runtime (a DSP kernel) is far above the mean too.
        assert!(stats.max_p > 2.0 * stats.mean_p);
    }

    #[test]
    fn reproducible_generation() {
        let a = soc_workload(4, &mut seeded_rng(3));
        let b = soc_workload(4, &mut seeded_rng(3));
        assert_eq!(a, b);
    }

    #[test]
    fn custom_mixes_are_respected() {
        let mut rng = seeded_rng(5);
        let cfg = SocWorkloadConfig {
            control_kernels: 1,
            dsp_kernels: 1,
            data_blobs: 1,
            processors: 3,
        };
        let inst = cfg.generate(&mut rng);
        assert_eq!(inst.n(), 3);
        // Control kernel runtime < DSP kernel runtime.
        assert!(inst.p(0) < inst.p(1));
        // Blob storage > control kernel storage.
        assert!(inst.s(2) > inst.s(0));
    }
}
