//! Precedence-constrained workload bundles.
//!
//! Combines the structural generators of `sws-dag` with randomized task
//! costs so RLS∆ (Section 5) can be evaluated over a representative DAG
//! suite. The structured families (Gaussian elimination, LU, FFT) keep
//! their natural cost models; the random families receive `(p, s)` drawn
//! from the same distributions as the independent-task experiments.

use rand::Rng;

use sws_dag::prelude::*;
use sws_model::task::Task;

use crate::random::TaskDistribution;
use crate::rng::WorkloadRng;

/// Identifier of a DAG workload family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DagFamily {
    /// Random layered DAG, the generic synthetic application.
    LayeredRandom,
    /// Ordered Erdős–Rényi DAG, unstructured dependencies.
    Erdos,
    /// Repeated fork–join stages.
    ForkJoin,
    /// Gaussian-elimination task graph (natural costs).
    GaussianElimination,
    /// Blocked LU factorization task graph (natural costs).
    Lu,
    /// FFT butterfly task graph (natural costs).
    Fft,
    /// 2-D wavefront grid.
    Diamond,
}

impl DagFamily {
    /// Every family, in the order used by the experiment tables.
    pub fn all() -> [DagFamily; 7] {
        [
            DagFamily::LayeredRandom,
            DagFamily::Erdos,
            DagFamily::ForkJoin,
            DagFamily::GaussianElimination,
            DagFamily::Lu,
            DagFamily::Fft,
            DagFamily::Diamond,
        ]
    }

    /// A short label for experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            DagFamily::LayeredRandom => "layered",
            DagFamily::Erdos => "erdos",
            DagFamily::ForkJoin => "forkjoin",
            DagFamily::GaussianElimination => "gauss",
            DagFamily::Lu => "lu",
            DagFamily::Fft => "fft",
            DagFamily::Diamond => "diamond",
        }
    }
}

/// Draws a task whose processing time and storage follow the requested
/// distribution (ranges `[1, 100]`, matching the independent-task
/// experiments).
fn draw_task(distribution: TaskDistribution, rng: &mut WorkloadRng) -> Task {
    let p: f64 = rng.gen_range(1.0..100.0);
    match distribution {
        TaskDistribution::Uncorrelated => Task::new_unchecked(p, rng.gen_range(1.0..100.0)),
        TaskDistribution::Correlated => {
            Task::new_unchecked(p, (p * rng.gen_range(0.8..1.2)).max(0.5))
        }
        TaskDistribution::AntiCorrelated => {
            Task::new_unchecked(p, ((101.0 - p) * rng.gen_range(0.8..1.2)).max(0.5))
        }
        TaskDistribution::Bimodal => {
            let s = if rng.gen_bool(0.1) {
                rng.gen_range(100.0..400.0)
            } else {
                rng.gen_range(1.0..40.0)
            };
            Task::new_unchecked(p, s)
        }
    }
}

/// Generates a DAG instance of the given family sized to *approximately*
/// `target_n` tasks, with `m` processors. Structured families pick the
/// closest parameterization; random families hit `target_n` exactly.
pub fn dag_workload(
    family: DagFamily,
    target_n: usize,
    m: usize,
    distribution: TaskDistribution,
    rng: &mut WorkloadRng,
) -> DagInstance {
    let target_n = target_n.max(4);
    let graph = match family {
        DagFamily::LayeredRandom => {
            let layers = (target_n as f64).sqrt().round().max(2.0) as usize;
            let g = layered_random(target_n, layers.min(target_n), 0.2, rng);
            g.with_costs(|_| draw_task(distribution, rng))
        }
        DagFamily::Erdos => {
            let g = layered_erdos(target_n, (4.0 / target_n as f64).min(0.5), rng);
            g.with_costs(|_| draw_task(distribution, rng))
        }
        DagFamily::ForkJoin => {
            let width = (target_n as f64).sqrt().round().max(2.0) as usize;
            let stages = (target_n / (width + 1)).max(1);
            let g = fork_join(stages, width);
            g.with_costs(|_| draw_task(distribution, rng))
        }
        DagFamily::GaussianElimination => {
            // n(k) = (k-1) + k(k-1)/2 ~ k^2/2 -> k ~ sqrt(2 n).
            let k = ((2.0 * target_n as f64).sqrt().round() as usize).max(2);
            gaussian_elimination(k)
        }
        DagFamily::Lu => {
            // n(b) = Σ r^2 ~ b^3/3 -> b ~ (3n)^(1/3).
            let b = ((3.0 * target_n as f64).cbrt().round() as usize).max(1);
            lu_factorization(b)
        }
        DagFamily::Fft => {
            // n(L) = (L+1)·2^L; pick the smallest L reaching target_n.
            let mut levels = 1usize;
            while (levels + 1) * (1 << levels) < target_n && levels < 12 {
                levels += 1;
            }
            fft_butterfly(levels)
        }
        DagFamily::Diamond => {
            let side = (target_n as f64).sqrt().round().max(2.0) as usize;
            let g = diamond_grid(side, side);
            g.with_costs(|_| draw_task(distribution, rng))
        }
    };
    DagInstance::new(graph, m).expect("generators produce acyclic graphs and m > 0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use sws_dag::analysis::structurally_sound;

    #[test]
    fn every_family_produces_a_valid_instance() {
        let mut rng = seeded_rng(31);
        for family in DagFamily::all() {
            let inst = dag_workload(family, 60, 4, TaskDistribution::Uncorrelated, &mut rng);
            assert!(inst.n() >= 4, "{} produced too few tasks", family.label());
            assert_eq!(inst.m(), 4);
            assert!(
                structurally_sound(inst.graph()),
                "{} unsound",
                family.label()
            );
            for i in 0..inst.n() {
                assert!(inst.tasks().get(i).p > 0.0);
                assert!(inst.tasks().get(i).s > 0.0);
            }
        }
    }

    #[test]
    fn random_families_hit_the_target_size_exactly() {
        let mut rng = seeded_rng(32);
        for family in [DagFamily::LayeredRandom, DagFamily::Erdos] {
            let inst = dag_workload(family, 77, 3, TaskDistribution::Correlated, &mut rng);
            assert_eq!(inst.n(), 77);
        }
    }

    #[test]
    fn structured_families_approximate_the_target_size() {
        let mut rng = seeded_rng(33);
        for family in [
            DagFamily::GaussianElimination,
            DagFamily::Lu,
            DagFamily::Fft,
        ] {
            let inst = dag_workload(family, 100, 4, TaskDistribution::Uncorrelated, &mut rng);
            assert!(inst.n() >= 30, "{}: n = {}", family.label(), inst.n());
            assert!(inst.n() <= 400, "{}: n = {}", family.label(), inst.n());
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let a = dag_workload(
            DagFamily::LayeredRandom,
            50,
            4,
            TaskDistribution::Bimodal,
            &mut seeded_rng(7),
        );
        let b = dag_workload(
            DagFamily::LayeredRandom,
            50,
            4,
            TaskDistribution::Bimodal,
            &mut seeded_rng(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn labels_are_unique() {
        let labels: Vec<&str> = DagFamily::all().iter().map(|f| f.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
