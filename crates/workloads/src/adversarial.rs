//! The paper's adversarial instances (Section 4).
//!
//! These instances drive the inapproximability results and are the inputs
//! of Figures 1 and 2; the evaluation harness re-enumerates their Pareto
//! fronts with `sws-exact` and checks the claimed objective values.

use sws_model::Instance;

/// The first instance (Section 4.1, Figure 1): two processors, three
/// tasks with `p = [1, 1/2, 1/2]` and `s = [ε, 1, 1]`.
///
/// Its Pareto-optimal points are `(1, 2)` and `(3/2, 1 + ε)`, which proves
/// Lemma 1: no algorithm is better than `(1, 2)` (or `(2, 1)` by
/// symmetry).
pub fn lemma1_instance(eps: f64) -> Instance {
    assert!(eps > 0.0, "the paper's ε must be positive");
    Instance::from_ps(&[1.0, 0.5, 0.5], &[eps, 1.0, 1.0], 2).expect("constants are valid")
}

/// The `m`-processor family (Section 4.2): `m − 1` "long" tasks with
/// `p = 1, s = ε` and `k·m` "heavy" tasks with `p = 1/(km), s = 1`.
///
/// The optimal makespan is 1 and the optimal memory consumption is
/// `k + ε`; Pareto-optimal solution `i ∈ {0..k}` has makespan `1 + i/(km)`
/// and memory `k + (k − i)(m − 1)` (except `i = k` whose memory is
/// `k + ε`), which proves Lemma 2.
pub fn lemma2_instance(m: usize, k: usize, eps: f64) -> Instance {
    assert!(m >= 2 && k >= 2, "Lemma 2 requires m, k >= 2");
    assert!(eps > 0.0, "the paper's ε must be positive");
    let n = k * m + m - 1;
    let mut p = Vec::with_capacity(n);
    let mut s = Vec::with_capacity(n);
    for _ in 0..(m - 1) {
        p.push(1.0);
        s.push(eps);
    }
    for _ in 0..(k * m) {
        p.push(1.0 / (k * m) as f64);
        s.push(1.0);
    }
    Instance::from_ps(&p, &s, m).expect("constants are valid")
}

/// The objective point of the `i`-th Pareto-optimal solution of the
/// Lemma 2 instance (`i ∈ {0..k}`), as derived in Section 4.2:
/// makespan `1 + i/(km)`, memory `k + (k − i)(m − 1)` for `i < k` and
/// `k + ε` for `i = k`.
pub fn lemma2_pareto_point(m: usize, k: usize, i: usize, eps: f64) -> (f64, f64) {
    assert!(i <= k, "solution index i ranges over 0..=k");
    let cmax = 1.0 + i as f64 / (k * m) as f64;
    let mmax = if i == k {
        k as f64 + eps
    } else {
        (k + (k - i) * (m - 1)) as f64
    };
    (cmax, mmax)
}

/// The second two-processor instance (Section 4.3, Figure 2): three tasks
/// with `p = [1, ε, 1 − ε]` and `s = [ε, 1, 1 − ε]`.
///
/// Its Pareto-optimal points are `(1, 2 − ε)`, `(1 + ε, 1 + ε)` and
/// `(2 − ε, 1)`; with `ε` close to `1/2` this proves Lemma 3: no algorithm
/// is better than `(3/2, 3/2)`.
pub fn lemma3_instance(eps: f64) -> Instance {
    assert!(eps > 0.0 && eps < 0.5, "Lemma 3 needs 0 < ε < 1/2");
    Instance::from_ps(&[1.0, eps, 1.0 - eps], &[eps, 1.0, 1.0 - eps], 2)
        .expect("constants are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::bounds::{cmax_lower_bound, mmax_lower_bound};

    #[test]
    fn lemma1_instance_matches_the_paper_constants() {
        let inst = lemma1_instance(0.01);
        assert_eq!(inst.n(), 3);
        assert_eq!(inst.m(), 2);
        assert_eq!(inst.p(0), 1.0);
        assert_eq!(inst.s(2), 1.0);
        assert!((inst.total_work() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lemma2_instance_has_km_plus_m_minus_1_tasks() {
        for &(m, k) in &[(2usize, 2usize), (3, 4), (5, 3)] {
            let inst = lemma2_instance(m, k, 1e-3);
            assert_eq!(inst.n(), k * m + m - 1);
            assert_eq!(inst.m(), m);
            // Total work: (m-1)·1 + km·(1/km) = m.
            assert!((inst.total_work() - m as f64).abs() < 1e-9);
            // Optimal makespan is 1 (each processor gets one unit of work),
            // so the lower bound must not exceed 1.
            assert!(cmax_lower_bound(inst.tasks(), m) <= 1.0 + 1e-9);
            // Optimal memory is k + eps; the Graham bound is k + small.
            assert!(mmax_lower_bound(inst.tasks(), m) <= k as f64 + 1.0);
        }
    }

    #[test]
    fn lemma2_pareto_points_match_the_formulas() {
        let (c0, m0) = lemma2_pareto_point(3, 4, 0, 1e-3);
        assert!((c0 - 1.0).abs() < 1e-12);
        assert!((m0 - (4 + 4 * 2) as f64).abs() < 1e-12);
        let (ck, mk) = lemma2_pareto_point(3, 4, 4, 1e-3);
        assert!((ck - (1.0 + 4.0 / 12.0)).abs() < 1e-12);
        assert!((mk - 4.001).abs() < 1e-12);
    }

    #[test]
    fn lemma3_instance_matches_the_paper_constants() {
        let inst = lemma3_instance(0.25);
        assert_eq!(inst.n(), 3);
        assert!((inst.total_work() - 2.0).abs() < 1e-12);
        assert!((inst.total_storage() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(std::panic::catch_unwind(|| lemma1_instance(0.0)).is_err());
        assert!(std::panic::catch_unwind(|| lemma2_instance(1, 2, 0.1)).is_err());
        assert!(std::panic::catch_unwind(|| lemma3_instance(0.7)).is_err());
    }
}
