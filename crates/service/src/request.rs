//! Owned, tenant-tagged requests — the wire format of the service.
//!
//! The portfolio's [`SolveRequest`] *borrows* its instance, which is
//! the right shape for batch calls but not for a queue crossed by
//! worker threads. A [`ServiceRequest`] therefore owns its instance
//! behind an [`Arc`] (submitting the same instance many times shares
//! one allocation) and adds the service envelope: tenant id, queue
//! priority, and an optional deadline. Workers rebuild the borrowed
//! [`SolveRequest`] view on their side of the queue, so the dispatch
//! core sees exactly the vocabulary the batch path uses.

use std::sync::Arc;
use std::time::Duration;

use sws_dag::DagInstance;
use sws_model::solve::{Guarantee, ObjectiveMode, SolveRequest};
use sws_model::Instance;

/// The instance a service request schedules, owned and shareable
/// across threads.
#[derive(Clone)]
pub enum ServiceInstance {
    /// Independent tasks on identical processors.
    Independent(Arc<Instance>),
    /// A precedence-constrained task DAG.
    Dag(Arc<DagInstance>),
}

impl ServiceInstance {
    /// Number of tasks.
    pub fn n(&self) -> usize {
        match self {
            ServiceInstance::Independent(inst) => inst.n(),
            ServiceInstance::Dag(dag) => dag.n(),
        }
    }

    /// Number of processors.
    pub fn m(&self) -> usize {
        match self {
            ServiceInstance::Independent(inst) => inst.m(),
            ServiceInstance::Dag(dag) => dag.m(),
        }
    }

    /// The borrowed portfolio view of this instance at the given
    /// objective and (effective) guarantee.
    pub fn as_request(&self, objective: ObjectiveMode, guarantee: Guarantee) -> SolveRequest<'_> {
        match self {
            ServiceInstance::Independent(inst) => {
                SolveRequest::independent(inst, objective).with_guarantee(guarantee)
            }
            ServiceInstance::Dag(dag) => {
                SolveRequest::precedence(&**dag, objective).with_guarantee(guarantee)
            }
        }
    }
}

impl std::fmt::Debug for ServiceInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceInstance::Independent(inst) => f
                .debug_struct("Independent")
                .field("n", &inst.n())
                .field("m", &inst.m())
                .finish(),
            ServiceInstance::Dag(dag) => f
                .debug_struct("Dag")
                .field("n", &dag.n())
                .field("m", &dag.m())
                .finish(),
        }
    }
}

/// One tenant-tagged solve request, as submitted to the service.
#[derive(Debug, Clone)]
pub struct ServiceRequest {
    /// The tenant submitting the request (admission is governed by the
    /// tenant's registered `TenantPolicy`).
    pub tenant: String,
    /// The instance to schedule.
    pub instance: ServiceInstance,
    /// Which objectives to optimize.
    pub objective: ObjectiveMode,
    /// The required guarantee (possibly raised to the tenant's floor or
    /// degraded per policy at admission).
    pub guarantee: Guarantee,
    /// Queue priority: higher values are dequeued first; FIFO within a
    /// level.
    pub priority: u8,
    /// Give-up budget measured from submission: a request still queued
    /// when the deadline passes resolves to `DeadlineExpired` instead
    /// of being dispatched.
    pub deadline: Option<Duration>,
}

impl ServiceRequest {
    /// A request with default envelope: no guarantee demanded, priority
    /// 0, no deadline.
    pub fn new(
        tenant: impl Into<String>,
        instance: ServiceInstance,
        objective: ObjectiveMode,
    ) -> Self {
        ServiceRequest {
            tenant: tenant.into(),
            instance,
            objective,
            guarantee: Guarantee::None,
            priority: 0,
            deadline: None,
        }
    }

    /// A request over independent tasks.
    pub fn independent(
        tenant: impl Into<String>,
        inst: Arc<Instance>,
        objective: ObjectiveMode,
    ) -> Self {
        Self::new(tenant, ServiceInstance::Independent(inst), objective)
    }

    /// A request over a task DAG.
    pub fn dag(tenant: impl Into<String>, dag: Arc<DagInstance>, objective: ObjectiveMode) -> Self {
        Self::new(tenant, ServiceInstance::Dag(dag), objective)
    }

    /// Replaces the required guarantee.
    pub fn with_guarantee(mut self, guarantee: Guarantee) -> Self {
        self.guarantee = guarantee;
        self
    }

    /// Replaces the queue priority.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets a deadline measured from submission.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}
