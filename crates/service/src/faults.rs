//! Deterministic fault injection for the service's chaos tests.
//!
//! The harness wraps every backend of a [`Portfolio`] in a
//! [`FaultySolver`] that consults a seeded [`FaultPlan`] before
//! delegating: a request may be made to panic, stall, return a spurious
//! typed error, or lie about its pre-dispatch cost estimate. Which
//! requests are faulted is a pure function of the *request* (a
//! fingerprint over its tasks, shape, objective and guarantee) and the
//! plan's seed — never of worker interleaving or call order — so a
//! chaos run is reproducible under any concurrency, and the test can
//! recompute exactly which requests were faulted after the fact.
//!
//! ```
//! use std::sync::Arc;
//! use sws_core::portfolio::Portfolio;
//! use sws_service::faults::FaultPlan;
//!
//! let plan = Arc::new(FaultPlan::new(42).with_panics(0.2));
//! let chaotic = plan.clone().wrap(Portfolio::standard());
//! // `chaotic` now panics on ~20% of requests, deterministically.
//! ```
//!
//! Injected panics are ordinary Rust panics (the service's isolation
//! path must handle the real thing), marked with
//! [`INJECTED_PANIC_MARKER`] so [`silence_injected_panics`] can keep
//! them out of test logs while letting genuine panics print.

use std::collections::HashSet;
use std::sync::{Arc, Mutex, Once, PoisonError};
use std::time::Duration;

use sws_core::portfolio::{KernelWorkspace, Portfolio, Solver};
use sws_model::error::ModelError;
use sws_model::policy::splitmix64;
use sws_model::solve::{BackendId, CostEstimate, Solution, SolveRequest};

/// Marker embedded in every injected panic message, so test
/// infrastructure can distinguish planned chaos from genuine bugs.
pub const INJECTED_PANIC_MARKER: &str = "[injected-fault]";

/// Granularity of an injected delay's sleep loop: the stall polls the
/// workspace's cancellation probe between chunks of this length, making
/// delayed requests the natural vehicle for mid-solve cancellation
/// tests.
const DELAY_CHUNK: Duration = Duration::from_millis(1);

// Salts separating the per-fault-type hash streams.
const SALT_PANIC: u64 = 0x70616e69_636b6564;
const SALT_DELAY: u64 = 0x64656c61_79656421;
const SALT_ERROR: u64 = 0x6572726f_72696e67;
const SALT_MISCOST: u64 = 0x6d697363_6f737421;

/// A seeded, deterministic fault schedule. See the module docs.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    panic_rate: f64,
    transient_panics: bool,
    delay_rate: f64,
    delay: Duration,
    error_rate: f64,
    miscost_rate: f64,
    miscost_factor: f64,
    /// The flooding tenant and its amplification factor, for
    /// [`FaultPlan::with_flood`].
    flood: Option<(String, u32)>,
    /// Fingerprints whose injected panic already fired, for
    /// [`FaultPlan::with_transient_panics`]. A `Mutex<HashSet>` rather
    /// than anything lock-free: faults fire at most once per attempt,
    /// never inside scheduling rounds.
    fired: Mutex<HashSet<u64>>,
}

impl FaultPlan {
    /// A plan that injects nothing until configured otherwise.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            panic_rate: 0.0,
            transient_panics: false,
            delay_rate: 0.0,
            delay: Duration::ZERO,
            error_rate: 0.0,
            miscost_rate: 0.0,
            miscost_factor: 1.0,
            flood: None,
            fired: Mutex::new(HashSet::new()),
        }
    }

    /// Panics on this fraction of requests (marked with
    /// [`INJECTED_PANIC_MARKER`]).
    pub fn with_panics(mut self, rate: f64) -> Self {
        self.panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Makes injected panics *transient*: each faulted request panics
    /// only on its first solve attempt and succeeds if retried —
    /// exercising the recovery half of a retry policy. (Still
    /// deterministic per fingerprint; the `fired` set is keyed on the
    /// request, not on call order.)
    pub fn with_transient_panics(mut self) -> Self {
        self.transient_panics = true;
        self
    }

    /// Stalls this fraction of requests for `delay` before delegating,
    /// polling the cancellation probe every millisecond of the stall.
    pub fn with_delays(mut self, rate: f64, delay: Duration) -> Self {
        self.delay_rate = rate.clamp(0.0, 1.0);
        self.delay = delay;
        self
    }

    /// Fails this fraction of requests with a spurious typed
    /// `ModelError` instead of solving.
    pub fn with_errors(mut self, rate: f64) -> Self {
        self.error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Multiplies the cost estimate of this fraction of requests by
    /// `factor` — modeling a backend whose pre-dispatch estimate is
    /// wrong, which must only ever shift admission decisions, never
    /// corrupt results.
    pub fn with_miscosts(mut self, rate: f64, factor: f64) -> Self {
        self.miscost_rate = rate.clamp(0.0, 1.0);
        self.miscost_factor = factor;
        self
    }

    /// Marks `tenant` as a *flooding* tenant: [`FaultPlan::flood_wave`]
    /// amplifies its traffic `factor`-fold. Unlike the solver-level
    /// faults this is an *overload* injection — it attacks the queue's
    /// fairness discipline and the shed ladder, not a backend — and it
    /// is just as deterministic: the flooded wave is a pure function of
    /// the base wave.
    pub fn with_flood(mut self, tenant: impl Into<String>, factor: u32) -> Self {
        self.flood = Some((tenant.into(), factor.max(1)));
        self
    }

    /// The flooding tenant and amplification factor, when configured.
    pub fn flood_tenant(&self) -> Option<(&str, u32)> {
        self.flood
            .as_ref()
            .map(|(tenant, factor)| (tenant.as_str(), *factor))
    }

    /// Expands a base request wave under the flood: every request whose
    /// tenant is the flooding one appears `factor` times (clones of the
    /// original, contiguously, so the flood arrives as the burst a
    /// misbehaving client would send); everyone else's requests pass
    /// through once, in order. Without a configured flood the wave is
    /// returned unchanged.
    pub fn flood_wave(&self, base: Vec<crate::ServiceRequest>) -> Vec<crate::ServiceRequest> {
        let Some((tenant, factor)) = self.flood_tenant() else {
            return base;
        };
        let mut wave = Vec::with_capacity(base.len());
        for req in base {
            let copies = if req.tenant == tenant { factor } else { 1 };
            for _ in 1..copies {
                wave.push(req.clone());
            }
            wave.push(req);
        }
        wave
    }

    /// Wraps every backend of a portfolio in a [`FaultySolver`] sharing
    /// this plan. Registration order — and therefore selection — is
    /// preserved.
    pub fn wrap(self: Arc<Self>, portfolio: Portfolio) -> Portfolio {
        portfolio.map_backends(|inner| {
            Box::new(FaultySolver {
                inner,
                plan: Arc::clone(&self),
            })
        })
    }

    /// The call-order-independent fingerprint of a request: a hash of
    /// its task vector, shape, objective and guarantee. Two requests
    /// over identical data share a fingerprint (and therefore a fault
    /// decision) — the price of determinism under concurrency.
    pub fn fingerprint(req: &SolveRequest) -> u64 {
        let mut h = 0x5357_5321_u64;
        let mut fold = |x: u64| h = splitmix64(h ^ x);
        fold(req.n() as u64);
        fold(req.m() as u64);
        let (obj_tag, obj_param) = match req.objective {
            sws_model::solve::ObjectiveMode::CmaxOnly => (1u64, 0.0),
            sws_model::solve::ObjectiveMode::BiObjective { delta } => (2, delta),
            sws_model::solve::ObjectiveMode::TriObjective { delta } => (3, delta),
            sws_model::solve::ObjectiveMode::MemoryBudget { budget } => (4, budget),
        };
        fold(obj_tag);
        fold(obj_param.to_bits());
        let (g_tag, g_param) = match req.guarantee {
            sws_model::solve::Guarantee::None => (1u64, 0.0),
            sws_model::solve::Guarantee::PaperRatio => (2, 0.0),
            sws_model::solve::Guarantee::EpsilonOptimal(eps) => (3, eps),
            sws_model::solve::Guarantee::Exact => (4, 0.0),
        };
        fold(g_tag);
        fold(g_param.to_bits());
        for (_, task) in req.tasks().iter() {
            fold(task.p.to_bits());
            fold(task.s.to_bits());
        }
        h
    }

    /// Whether the `salt` fault stream fires for `fingerprint` at
    /// probability `rate`: a uniform draw from the seeded hash.
    fn decides(&self, fingerprint: u64, salt: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let unit = splitmix64(self.seed ^ fingerprint ^ salt) as f64 / (u64::MAX as f64 + 1.0);
        unit < rate
    }

    /// Whether this plan panics on the request (ignoring the transient
    /// first-attempt bookkeeping) — exposed so chaos tests can
    /// recompute the faulted set after a run.
    pub fn panics_on(&self, req: &SolveRequest) -> bool {
        self.decides(Self::fingerprint(req), SALT_PANIC, self.panic_rate)
    }

    /// Whether this plan stalls the request.
    pub fn delays_on(&self, req: &SolveRequest) -> bool {
        self.decides(Self::fingerprint(req), SALT_DELAY, self.delay_rate)
    }

    /// Whether this plan fails the request with a spurious error.
    pub fn errors_on(&self, req: &SolveRequest) -> bool {
        self.decides(Self::fingerprint(req), SALT_ERROR, self.error_rate)
    }

    /// Whether this plan distorts the request's cost estimate.
    pub fn miscosts_on(&self, req: &SolveRequest) -> bool {
        self.decides(Self::fingerprint(req), SALT_MISCOST, self.miscost_rate)
    }

    /// Whether an injected panic should fire now for `fingerprint`,
    /// accounting for the transient mode's once-per-request rule.
    fn panic_fires(&self, fingerprint: u64) -> bool {
        if !self.transient_panics {
            return true;
        }
        self.fired
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(fingerprint)
    }
}

/// A [`Solver`] decorator injecting the faults its shared [`FaultPlan`]
/// schedules; delegates everything else to the wrapped backend
/// unchanged, so non-faulted requests stay bit-identical to the bare
/// portfolio.
pub struct FaultySolver {
    inner: Box<dyn Solver>,
    plan: Arc<FaultPlan>,
}

impl Solver for FaultySolver {
    fn id(&self) -> BackendId {
        self.inner.id()
    }

    fn bid(&self, req: &SolveRequest) -> Option<u32> {
        self.inner.bid(req)
    }

    fn estimate_cost(&self, req: &SolveRequest) -> CostEstimate {
        let mut cost = self.inner.estimate_cost(req);
        if self.plan.miscosts_on(req) {
            cost.work *= self.plan.miscost_factor;
        }
        cost
    }

    fn solve_in(
        &self,
        req: &SolveRequest,
        ws: &mut KernelWorkspace,
    ) -> Result<Solution, ModelError> {
        let fp = FaultPlan::fingerprint(req);
        if self.plan.decides(fp, SALT_DELAY, self.plan.delay_rate) {
            // Stall cooperatively: a cancelled or deadline-expired
            // ticket interrupts the stall at the next chunk, exactly
            // like a slow backend polling between rounds.
            let mut remaining = self.plan.delay;
            while remaining > Duration::ZERO {
                ws.probe().poll()?;
                let step = remaining.min(DELAY_CHUNK);
                std::thread::sleep(step);
                remaining -= step;
            }
        }
        if self.plan.decides(fp, SALT_PANIC, self.plan.panic_rate) && self.plan.panic_fires(fp) {
            // sws-lint: allow(panic-policy, reason = "the chaos backend's whole purpose is injecting panics to exercise the catch_unwind isolation; the marker string routes it to the retry ladder")
            panic!(
                "{INJECTED_PANIC_MARKER} chaos plan {seed:#x} panicked request {fp:#x} in {id}",
                seed = self.plan.seed,
                id = self.inner.id().label(),
            );
        }
        if self.plan.decides(fp, SALT_ERROR, self.plan.error_rate) {
            return Err(ModelError::InvalidParameter {
                name: "injected-fault",
                value: 0.0,
                constraint: "spurious error injected by the chaos plan",
            });
        }
        self.inner.solve_in(req, ws)
    }
}

/// Installs (once, process-wide) a panic hook that suppresses the
/// default "thread panicked" report for panics carrying
/// [`INJECTED_PANIC_MARKER`], while chaining every other panic to the
/// previous hook. Chaos tests call this so their logs stay clean enough
/// that *any* panic line is a real failure — the invariant the CI
/// zero-panic check enforces.
pub fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains(INJECTED_PANIC_MARKER))
                || info
                    .payload()
                    .downcast_ref::<&'static str>()
                    .is_some_and(|s| s.contains(INJECTED_PANIC_MARKER));
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::solve::{Guarantee, ObjectiveMode};
    use sws_model::Instance;

    fn req_for(inst: &Instance) -> SolveRequest<'_> {
        SolveRequest::independent(inst, ObjectiveMode::CmaxOnly).with_guarantee(Guarantee::None)
    }

    #[test]
    fn fault_decisions_are_deterministic_and_seed_sensitive() {
        let a = Instance::from_ps(&[3.0, 2.0, 1.0], &[1.0, 2.0, 3.0], 2).unwrap();
        let plan1 = FaultPlan::new(7).with_panics(0.5);
        let plan2 = FaultPlan::new(7).with_panics(0.5);
        assert_eq!(plan1.panics_on(&req_for(&a)), plan2.panics_on(&req_for(&a)));
        // Across many seeds the decision must vary — the rate is real.
        let hits = (0..64u64)
            .filter(|&s| FaultPlan::new(s).with_panics(0.5).panics_on(&req_for(&a)))
            .count();
        assert!(hits > 8 && hits < 56, "rate 0.5 produced {hits}/64 hits");
    }

    #[test]
    fn fingerprints_separate_distinct_requests() {
        let a = Instance::from_ps(&[3.0, 2.0, 1.0], &[1.0, 2.0, 3.0], 2).unwrap();
        let b = Instance::from_ps(&[3.0, 2.0, 1.5], &[1.0, 2.0, 3.0], 2).unwrap();
        assert_ne!(
            FaultPlan::fingerprint(&req_for(&a)),
            FaultPlan::fingerprint(&req_for(&b))
        );
        let exact = req_for(&a).with_guarantee(Guarantee::Exact);
        assert_ne!(
            FaultPlan::fingerprint(&req_for(&a)),
            FaultPlan::fingerprint(&exact)
        );
    }

    #[test]
    fn wrapped_portfolio_is_bit_identical_on_unfaulted_requests() {
        let inst = Instance::from_ps(&[8.0, 6.0, 1.0, 1.0, 4.0, 2.0], &[1.0; 6], 2).unwrap();
        let req = req_for(&inst);
        let plan = Arc::new(FaultPlan::new(3)); // injects nothing
        let bare = Portfolio::standard();
        let direct = bare.solve(&req).unwrap();
        let wrapped = plan.wrap(Portfolio::standard());
        let via = wrapped.solve(&req).unwrap();
        assert_eq!(direct.schedule, via.schedule);
        assert_eq!(direct.point, via.point);
        assert_eq!(direct.stats.backend, via.stats.backend);
    }

    #[test]
    fn transient_panics_fire_exactly_once_per_request() {
        silence_injected_panics();
        let inst = Instance::from_ps(&[5.0, 4.0, 3.0], &[1.0; 3], 2).unwrap();
        // Find a seed whose plan panics on this request.
        let seed = (0..256u64)
            .find(|&s| {
                FaultPlan::new(s)
                    .with_panics(0.5)
                    .panics_on(&req_for(&inst))
            })
            .expect("some seed under 256 must fault a 50% plan");
        let plan = Arc::new(
            FaultPlan::new(seed)
                .with_panics(0.5)
                .with_transient_panics(),
        );
        let wrapped = Arc::clone(&plan).wrap(Portfolio::standard());
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            wrapped.solve(&req_for(&inst))
        }));
        assert!(first.is_err(), "first attempt must panic");
        let second = wrapped.solve(&req_for(&inst));
        assert!(second.is_ok(), "retry after a transient panic succeeds");
    }

    #[test]
    fn flood_wave_amplifies_only_the_flooding_tenant() {
        let inst = Arc::new(Instance::from_ps(&[3.0, 2.0, 1.0], &[1.0; 3], 2).unwrap());
        let mk = |tenant: &str| {
            crate::ServiceRequest::independent(tenant, Arc::clone(&inst), ObjectiveMode::CmaxOnly)
        };
        let plan = FaultPlan::new(1).with_flood("noisy", 4);
        assert_eq!(plan.flood_tenant(), Some(("noisy", 4)));
        let wave = plan.flood_wave(vec![mk("noisy"), mk("quiet")]);
        assert_eq!(wave.len(), 5);
        assert_eq!(wave.iter().filter(|r| r.tenant == "noisy").count(), 4);
        assert_eq!(wave.iter().filter(|r| r.tenant == "quiet").count(), 1);
        // Without a flood the wave passes through untouched.
        let calm = FaultPlan::new(1);
        assert_eq!(calm.flood_tenant(), None);
        assert_eq!(calm.flood_wave(vec![mk("noisy")]).len(), 1);
    }

    #[test]
    fn injected_errors_and_miscosts_do_not_panic() {
        let inst = Instance::from_ps(&[5.0, 4.0, 3.0], &[1.0; 3], 2).unwrap();
        let plan = Arc::new(FaultPlan::new(11).with_errors(1.0).with_miscosts(1.0, 64.0));
        let wrapped = Arc::clone(&plan).wrap(Portfolio::standard());
        let req = req_for(&inst);
        assert!(plan.errors_on(&req) && plan.miscosts_on(&req));
        match wrapped.solve(&req) {
            Err(ModelError::InvalidParameter { name, .. }) => assert_eq!(name, "injected-fault"),
            other => panic!("expected the injected error, got {other:?}"),
        }
    }
}
