//! Lock-free service counters and latency quantiles.
//!
//! Every counter is a relaxed atomic — the stats path must never
//! contend with the dispatch path. Latencies go into a fixed
//! quarter-log2 histogram (256 buckets covering sub-nanosecond to
//! centuries at ≤ ~19% bucket width), so recording is an index
//! computation plus one atomic increment and quantile queries are a
//! 256-entry scan; nothing ever allocates or takes a lock.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Number of histogram buckets: 64 octaves × 4 sub-buckets.
const BUCKETS: usize = 256;

/// A fixed quarter-log2 latency histogram. See the module docs.
pub(crate) struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl LatencyHistogram {
    pub(crate) fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Bucket index of a nanosecond value: octave (floor log2) times 4
    /// plus the next two mantissa bits.
    fn index(ns: u64) -> usize {
        let ns = ns.max(1);
        let exp = 63 - ns.leading_zeros() as usize;
        let sub = if exp >= 2 {
            ((ns >> (exp - 2)) & 0b11) as usize
        } else {
            0
        };
        (exp * 4 + sub).min(BUCKETS - 1)
    }

    /// Representative (upper-edge) nanosecond value of a bucket.
    fn value(index: usize) -> u64 {
        let exp = index / 4;
        let sub = (index % 4) as u64;
        if exp < 2 {
            // Octaves without sub-bucket resolution: the whole octave
            // is one bucket, upper edge 2^(exp+1).
            return 1u64 << (exp + 1);
        }
        // Upper edge of the sub-bucket: 2^exp · (1 + (sub+1)/4).
        let base = 1u64 << exp;
        base.saturating_add((base >> 2).saturating_mul(sub + 1))
    }

    pub(crate) fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        // sws-lint: allow(panic-policy, reason = "index() ends in .min(BUCKETS - 1), so the subscript is clamped in-bounds for every u64 input")
        self.buckets[Self::index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Zeroes every bucket (epoch rotation in [`RecentLatency`]).
    fn clear(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as a duration, `None` while the
    /// histogram is empty. Resolution is the bucket width (≤ ~19%).
    pub(crate) fn quantile(&self, q: f64) -> Option<Duration> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Duration::from_nanos(Self::value(i)));
            }
        }
        None
    }
}

/// A process-wide monotonic origin so epoch timestamps fit in one
/// atomic `u64` of nanoseconds.
fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    Instant::now()
        .saturating_duration_since(origin())
        .as_nanos()
        .min(u64::MAX as u128) as u64
}

/// A *windowed* latency view: the p99 over roughly the last one to two
/// windows, built from two [`LatencyHistogram`] epochs rotated in
/// place.
///
/// The cumulative histograms in [`Counters`] never forget, which is
/// right for lifetime quantiles but useless as an overload signal — a
/// p99 poisoned by a past incident would keep a tenant shedding
/// forever. Here, records land in the *current* epoch; once a window
/// elapses the stale epoch is cleared and becomes current, and
/// quantile queries merge both epochs. A quiet scope therefore decays
/// to "no signal" within two windows, which is what lets the shed
/// latch in `service.rs` recover hysteretically.
///
/// Rotation races are benign: a record landing in an epoch while
/// another thread clears it is lost from a *statistics window*, not
/// from an accounting invariant (terminal-outcome counts live in
/// [`Counters`], never here).
pub(crate) struct RecentLatency {
    epochs: [LatencyHistogram; 2],
    /// Which epoch records land in (0 or 1).
    current: AtomicUsize,
    /// Current epoch's start, nanoseconds since [`origin`].
    epoch_start: AtomicU64,
    window_ns: u64,
}

impl RecentLatency {
    /// The window the service uses when none is configured: long enough
    /// to accumulate a meaningful p99 under load, short enough that the
    /// shed latch reopens promptly once pressure drops.
    pub(crate) const DEFAULT_WINDOW: Duration = Duration::from_secs(1);

    pub(crate) fn new(window: Duration) -> Self {
        RecentLatency {
            epochs: [LatencyHistogram::new(), LatencyHistogram::new()],
            current: AtomicUsize::new(0),
            epoch_start: AtomicU64::new(now_ns()),
            window_ns: window.as_nanos().clamp(1, u64::MAX as u128) as u64,
        }
    }

    /// Rotates epochs when the window has elapsed. Exactly one racing
    /// caller wins the CAS and performs the clear-and-flip; both the
    /// record and the query path call this, so an idle scope still
    /// decays without traffic.
    fn rotate(&self) {
        let now = now_ns();
        let start = self.epoch_start.load(Ordering::Relaxed);
        let elapsed = now.saturating_sub(start);
        if elapsed < self.window_ns {
            return;
        }
        if self
            .epoch_start
            .compare_exchange(start, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let current = self.current.load(Ordering::Relaxed) & 1;
        let next = current ^ 1;
        if let Some(stale) = self.epochs.get(next) {
            stale.clear();
        }
        if elapsed >= self.window_ns.saturating_mul(2) {
            // The whole view is stale (no rotation ran for two or more
            // windows): drop the old current epoch too instead of
            // reporting ancient latencies as "recent".
            if let Some(old) = self.epochs.get(current) {
                old.clear();
            }
        }
        self.current.store(next, Ordering::Relaxed);
    }

    pub(crate) fn record(&self, latency: Duration) {
        self.rotate();
        let idx = self.current.load(Ordering::Relaxed) & 1;
        if let Some(epoch) = self.epochs.get(idx) {
            epoch.record(latency);
        }
    }

    /// The `q`-quantile over both epochs (the last one to two windows),
    /// `None` when the window is empty.
    pub(crate) fn quantile(&self, q: f64) -> Option<Duration> {
        self.rotate();
        let counts: Vec<u64> = (0..BUCKETS)
            .map(|i| {
                self.epochs
                    .iter()
                    .map(|e| e.buckets.get(i).map_or(0, |b| b.load(Ordering::Relaxed)))
                    .sum()
            })
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Duration::from_nanos(LatencyHistogram::value(i)));
            }
        }
        None
    }
}

/// One scope's worth of counters (a tenant, or the global aggregate).
pub(crate) struct Counters {
    pub(crate) admitted: AtomicU64,
    pub(crate) degraded: AtomicU64,
    pub(crate) refused: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    pub(crate) expired: AtomicU64,
    pub(crate) panicked: AtomicU64,
    pub(crate) retried: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) sessions: AtomicU64,
    pub(crate) session_events: AtomicU64,
    pub(crate) session_replayed_rounds: AtomicU64,
    pub(crate) in_flight: AtomicUsize,
    pub(crate) latency: LatencyHistogram,
    pub(crate) recent: RecentLatency,
}

impl Counters {
    pub(crate) fn new() -> Self {
        Counters {
            admitted: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            sessions: AtomicU64::new(0),
            session_events: AtomicU64::new(0),
            session_replayed_rounds: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            latency: LatencyHistogram::new(),
            recent: RecentLatency::new(RecentLatency::DEFAULT_WINDOW),
        }
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, scope: String) -> ScopeStats {
        ScopeStats {
            scope,
            admitted: self.admitted.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            sessions: self.sessions.load(Ordering::Relaxed),
            session_events: self.session_events.load(Ordering::Relaxed),
            session_replayed_rounds: self.session_replayed_rounds.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            p50_latency: self.latency.quantile(0.50),
            p99_latency: self.latency.quantile(0.99),
            recent_p99: self.recent.quantile(0.99),
            queued: 0,
            deficit: 0,
            head_wait: None,
        }
    }
}

/// A point-in-time snapshot of one scope's counters (a tenant, or the
/// service-wide aggregate under the scope name `"global"`).
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeStats {
    /// Tenant id, or `"global"`.
    pub scope: String,
    /// Requests admitted (including degraded admissions).
    pub admitted: u64,
    /// Admissions that went through a policy-driven guarantee downgrade.
    pub degraded: u64,
    /// Requests refused at admission (quota, work gate, queue full,
    /// unknown tenant, or no qualifying backend).
    pub refused: u64,
    /// Requests that completed with a solution.
    pub completed: u64,
    /// Requests whose solve returned a typed error (e.g. `BudgetNotMet`).
    pub failed: u64,
    /// Requests cancelled before dispatch.
    pub cancelled: u64,
    /// Requests whose deadline passed before dispatch (or mid-solve, via
    /// the cooperative deadline probe).
    pub expired: u64,
    /// Requests that ended in [`crate::ServiceError::SolverPanicked`]:
    /// a backend panicked on every attempt the tenant's retry budget
    /// allowed. The worker survives; the panic is isolated per request.
    pub panicked: u64,
    /// Retry *events*: how many times a transiently-failed attempt was
    /// re-queued under the tenant's [`sws_model::policy::RetryPolicy`].
    /// Not a terminal outcome — a request retried twice and then
    /// completed contributes 2 here and 1 to `completed`.
    pub retried: u64,
    /// Admission decisions altered by overload shedding: requests
    /// degraded toward the tenant's `guarantee_floor` or refused with
    /// [`sws_model::policy::QuotaError::Overloaded`] while the shed
    /// latch was closed. A subset of `degraded + refused`.
    pub shed: u64,
    /// Incremental replanning sessions opened
    /// ([`crate::session::SessionTicket`]).
    pub sessions: u64,
    /// Replan deltas served across this scope's sessions (admitted
    /// events only; refusals count under `refused`).
    pub session_events: u64,
    /// Kernel rounds actually replayed across those deltas — next to
    /// `session_events × n` this is the measured work saving of the
    /// warm-start path.
    pub session_replayed_rounds: u64,
    /// Admitted requests not yet resolved (queued or running).
    pub in_flight: usize,
    /// Median submit→completion latency of completed requests.
    pub p50_latency: Option<Duration>,
    /// 99th-percentile submit→completion latency.
    pub p99_latency: Option<Duration>,
    /// 99th-percentile latency over roughly the last one to two
    /// [`RecentLatency`] windows — the overload-pressure signal, not a
    /// lifetime statistic. `None` when the window saw no completions.
    pub recent_p99: Option<Duration>,
    /// Requests queued in this scope's queue lane right now (for the
    /// global scope: total queue depth).
    pub queued: usize,
    /// The lane's deficit-round-robin counter in work units (global
    /// scope: sum over lanes).
    pub deficit: u64,
    /// How long the lane's next-in-line request has been queued (global
    /// scope: the maximum over lanes) — the aging gauge.
    pub head_wait: Option<Duration>,
}

impl ScopeStats {
    /// Total terminal outcomes delivered for admitted requests.
    pub fn terminal_outcomes(&self) -> u64 {
        self.completed + self.failed + self.cancelled + self.expired + self.panicked
    }
}

/// A point-in-time snapshot of the whole service: the global aggregate,
/// one entry per registered tenant, and the queue gauge.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Service-wide aggregate.
    pub global: ScopeStats,
    /// Per-tenant scopes, in registration order.
    pub tenants: Vec<ScopeStats>,
    /// Requests currently queued (admitted, not yet picked up).
    pub queue_depth: usize,
    /// The bounded queue's capacity.
    pub queue_capacity: usize,
}

impl ServiceStats {
    /// The snapshot of a tenant by id, if registered.
    pub fn tenant(&self, id: &str) -> Option<&ScopeStats> {
        self.tenants.iter().find(|t| t.scope == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_recorded_values() {
        let h = LatencyHistogram::new();
        for us in [100u64, 200, 300, 400, 1000] {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.quantile(0.5).unwrap();
        // Median of the five values is 300µs; the bucket upper edge is
        // within ~25% above it.
        assert!(p50 >= Duration::from_micros(280) && p50 <= Duration::from_micros(400));
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= Duration::from_micros(900));
        assert!(h.quantile(0.5).unwrap() <= h.quantile(0.99).unwrap());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut last = 0usize;
        for ns in [1u64, 2, 3, 5, 16, 17, 1000, 1_000_000, u64::MAX / 2] {
            let idx = LatencyHistogram::index(ns);
            assert!(idx >= last, "index must not decrease at {ns}");
            last = idx;
            // The representative value is at or above the recorded one
            // (upper bucket edge), within one bucket width.
            assert!(LatencyHistogram::value(idx) >= ns || idx == BUCKETS - 1);
        }
    }

    #[test]
    fn recent_latency_reports_then_forgets() {
        let window = Duration::from_millis(20);
        let recent = RecentLatency::new(window);
        recent.record(Duration::from_millis(5));
        recent.record(Duration::from_millis(7));
        let p99 = recent.quantile(0.99).expect("fresh records are visible");
        assert!(p99 >= Duration::from_millis(6));
        // Within one window the view persists (possibly across one
        // rotation into the merged pair)...
        std::thread::sleep(window / 2);
        assert!(recent.quantile(0.99).is_some());
        // ...but after several idle windows the signal decays to None —
        // the property the shed latch needs to reopen.
        std::thread::sleep(window.saturating_mul(3));
        assert_eq!(recent.quantile(0.99), None);
    }

    #[test]
    fn recent_latency_merges_across_one_rotation() {
        // Sleep one window (well short of two): the next record rotates
        // epochs, and the pre-rotation record must stay visible in the
        // merged view.
        let window = Duration::from_millis(200);
        let recent = RecentLatency::new(window);
        recent.record(Duration::from_micros(100));
        std::thread::sleep(window + window / 4);
        recent.record(Duration::from_micros(900));
        assert!(recent.quantile(0.99).expect("p99") >= Duration::from_micros(800));
        let p50 = recent.quantile(0.5).expect("merged view is non-empty");
        assert!(
            p50 <= Duration::from_micros(400),
            "pre-rotation record was dropped from the merged view: {p50:?}"
        );
    }

    #[test]
    fn scope_snapshot_counts_terminal_outcomes() {
        let c = Counters::new();
        Counters::bump(&c.admitted);
        Counters::bump(&c.admitted);
        Counters::bump(&c.completed);
        Counters::bump(&c.cancelled);
        let snap = c.snapshot("t".into());
        assert_eq!(snap.admitted, 2);
        assert_eq!(snap.terminal_outcomes(), 2);
    }

    #[test]
    fn panicked_is_terminal_but_retried_is_not() {
        let c = Counters::new();
        Counters::bump(&c.admitted);
        Counters::bump(&c.retried);
        Counters::bump(&c.retried);
        Counters::bump(&c.panicked);
        let snap = c.snapshot("t".into());
        assert_eq!(snap.panicked, 1);
        assert_eq!(snap.retried, 2);
        // Retries are events along the way, not resolutions: only the
        // final panic counts toward the terminal tally.
        assert_eq!(snap.terminal_outcomes(), 1);
    }
}
