//! Rolling-horizon replanning sessions: the service front for the
//! incremental delta-replan engine (`sws_core::replan`).
//!
//! The one-shot request path re-solves from scratch on every submit.
//! A *session* instead pins one mutating DAG instance to the tenant
//! that owns it: the cold solve is paid once at
//! [`ServiceHandle::open_session`], and every subsequent
//! [`CsrDelta`](sws_dag::CsrDelta) — a task arrival, a completion, a
//! cost re-estimate — is served by warm-starting the kernel from the
//! first affected round. The returned schedules are **bit-identical**
//! to from-scratch solves of the mutated instance (that is the
//! engine's contract, enforced by the differential suites), so a
//! session changes the *cost* of serving an event stream, never the
//! answers.
//!
//! Admission stays cost-gated, like everything else the service
//! serves, but a session event is charged what it is expected to
//! *actually* cost: the full-instance kernel estimate scaled by the
//! session's observed replay fraction
//! ([`ReplanEngine::estimated_event_cost`]). A tenant whose work gate
//! would refuse a from-scratch solve of the same instance can thus
//! keep replanning it incrementally — which is exactly the regime the
//! engine exists for — while a session whose deltas keep forcing deep
//! replays drifts back toward the from-scratch estimate and the gate
//! closes again.
//!
//! Sessions run on the caller's thread (a replan is microseconds of
//! work on warm paths; queueing it behind the worker pool would cost
//! more than serving it), hold no queue capacity and no in-flight
//! slot, and observe shutdown: events after
//! [`SchedulingService::shutdown`](crate::service::SchedulingService::shutdown)
//! begins are refused with [`ServiceError::ShuttingDown`].

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use sws_core::replan::ReplanEngine;
use sws_dag::{CsrDag, CsrDelta};
use sws_model::policy::QuotaError;
use sws_model::solve::{CostEstimate, Solution};

use crate::service::{ServiceError, ServiceHandle, Shared};
use crate::stats::Counters;

/// One tenant's live replanning session: the engine plus the service
/// bookkeeping (policy gate, counters, shutdown observation).
///
/// Obtained from [`ServiceHandle::open_session`]; dropped to close
/// (sessions hold no service resources, so closing is just dropping).
pub struct SessionTicket {
    shared: Arc<Shared>,
    tenant_idx: usize,
    engine: ReplanEngine,
}

impl std::fmt::Debug for SessionTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionTicket")
            .field("n", &self.engine.n())
            .field("m", &self.engine.m())
            .field("cap", &self.engine.cap())
            .field("events", &self.engine.events())
            .finish_non_exhaustive()
    }
}

impl SessionTicket {
    /// Applies one delta to the session's instance and returns the
    /// schedule of the mutated instance.
    ///
    /// The event first passes the tenant's work gate at the session's
    /// *incremental* cost estimate; refusals
    /// ([`QuotaError::WorkExceeded`]) leave the instance untouched, as
    /// do typed solve errors (a capped session turning infeasible, a
    /// re-estimate of a completed task).
    pub fn apply(&mut self, delta: &CsrDelta) -> Result<Solution, ServiceError> {
        let shared = &*self.shared;
        if !shared.accepting.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        let entry = shared.tenant(self.tenant_idx);
        let estimated = self.engine.estimated_event_cost().work;
        let limit = entry.policy.max_estimated_work;
        if estimated > limit {
            shared.count_refusal(Some(self.tenant_idx));
            return Err(ServiceError::Refused(QuotaError::WorkExceeded {
                estimated,
                limit,
            }));
        }
        let started = Instant::now();
        let replayed_before = self.engine.replayed_rounds();
        match self.engine.apply(delta) {
            Ok(solution) => {
                let latency = started.elapsed();
                let replayed = self.engine.replayed_rounds() - replayed_before;
                for counters in [&entry.counters, &shared.global] {
                    Counters::bump(&counters.session_events);
                    counters
                        .session_replayed_rounds
                        .fetch_add(replayed, Ordering::Relaxed);
                    Counters::bump(&counters.completed);
                    counters.latency.record(latency);
                    counters.recent.record(latency);
                }
                Ok(solution)
            }
            Err(err) => {
                Counters::bump(&entry.counters.failed);
                Counters::bump(&shared.global.failed);
                Err(ServiceError::Solve(err))
            }
        }
    }

    /// The schedule of the current instance, from the cached run — no
    /// replay, no admission gate (nothing is spent answering it).
    pub fn solution(&mut self) -> Solution {
        self.engine.solution()
    }

    /// The live (mutated) instance.
    pub fn csr(&self) -> &Arc<CsrDag> {
        self.engine.csr()
    }

    /// Deltas applied so far (completions included).
    pub fn events(&self) -> u64 {
        self.engine.events()
    }

    /// Fraction of scheduling rounds actually replayed versus a
    /// from-scratch-per-event server — the number the work gate scales
    /// the kernel estimate by.
    pub fn replay_fraction(&self) -> f64 {
        self.engine.replay_fraction()
    }

    /// The incremental cost estimate the next event will be gated at.
    pub fn estimated_event_cost(&self) -> CostEstimate {
        self.engine.estimated_event_cost()
    }
}

impl ServiceHandle {
    /// Opens an incremental replanning session for `tenant` over `csr`
    /// on `m` processors, with the per-processor memory cap fixed for
    /// the session's lifetime (`None` = unrestricted).
    ///
    /// The open is where the cold solve happens, so it is gated at the
    /// *full* kernel estimate against the tenant's work gate — only
    /// the follow-up deltas get the discounted incremental estimate.
    pub fn open_session(
        &self,
        tenant: &str,
        csr: CsrDag,
        m: usize,
        cap: Option<f64>,
    ) -> Result<SessionTicket, ServiceError> {
        let shared = &*self.shared;
        if !shared.accepting.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        let Some(tenant_idx) = shared.tenant_idx(tenant) else {
            shared.count_refusal(None);
            return Err(ServiceError::Refused(QuotaError::UnknownTenant {
                tenant: tenant.to_string(),
            }));
        };
        let entry = shared.tenant(tenant_idx);
        let estimated = CostEstimate::kernel(csr.n(), csr.edge_count()).work;
        let limit = entry.policy.max_estimated_work;
        if estimated > limit {
            shared.count_refusal(Some(tenant_idx));
            return Err(ServiceError::Refused(QuotaError::WorkExceeded {
                estimated,
                limit,
            }));
        }
        let started = Instant::now();
        let engine = ReplanEngine::open(csr, m, cap).map_err(|err| {
            Counters::bump(&entry.counters.failed);
            Counters::bump(&shared.global.failed);
            ServiceError::Solve(err)
        })?;
        let latency = started.elapsed();
        for counters in [&entry.counters, &shared.global] {
            Counters::bump(&counters.sessions);
            Counters::bump(&counters.admitted);
            Counters::bump(&counters.completed);
            counters.latency.record(latency);
            counters.recent.record(latency);
        }
        Ok(SessionTicket {
            shared: Arc::clone(&self.shared),
            tenant_idx,
            engine,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::SchedulingService;
    use sws_dag::TaskGraph;
    use sws_model::error::ModelError;
    use sws_model::policy::TenantPolicy;
    use sws_model::task::TaskSet;

    fn diamond_csr() -> CsrDag {
        let tasks = TaskSet::from_ps(&[2.0, 3.0, 1.0, 4.0], &[1.0, 2.0, 3.0, 1.0]).unwrap();
        TaskGraph::from_edges(tasks, &[(0, 1), (0, 2), (1, 3), (2, 3)])
            .unwrap()
            .csr()
    }

    #[test]
    fn session_serves_deltas_and_counts_them() {
        let service = SchedulingService::builder()
            .workers(0)
            .tenant("acme", TenantPolicy::unlimited())
            .build();
        let handle = service.handle();
        let mut session = handle.open_session("acme", diamond_csr(), 2, None).unwrap();
        let sol = session
            .apply(&CsrDelta::AddTask {
                preds: vec![1, 2],
                p: 2.0,
                s: 1.0,
            })
            .unwrap();
        assert_eq!(sol.schedule.n(), 5);
        session.apply(&CsrDelta::CompleteTask { task: 0 }).unwrap();
        assert_eq!(session.events(), 2);
        let stats = handle.stats();
        let acme = stats.tenant("acme").unwrap();
        assert_eq!(acme.sessions, 1);
        assert_eq!(acme.session_events, 2);
        assert_eq!(stats.global.session_events, 2);
        service.shutdown();
    }

    #[test]
    fn unknown_tenants_cannot_open_sessions() {
        let service = SchedulingService::builder().workers(0).build();
        let err = service
            .handle()
            .open_session("nobody", diamond_csr(), 2, None)
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Refused(QuotaError::UnknownTenant { .. })
        ));
        service.shutdown();
    }

    #[test]
    fn the_work_gate_prices_events_incrementally() {
        // A gate below the full kernel estimate refuses the open...
        let full = CostEstimate::kernel(4, 4).work;
        let service = SchedulingService::builder()
            .workers(0)
            .tenant(
                "tight",
                TenantPolicy::unlimited().with_max_estimated_work(full - 1.0),
            )
            .tenant("roomy", TenantPolicy::unlimited())
            .build();
        let handle = service.handle();
        let err = handle
            .open_session("tight", diamond_csr(), 2, None)
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Refused(QuotaError::WorkExceeded { .. })
        ));
        // ...while an open session's events are priced at the replay
        // fraction, which a zero-replay completion pulls below 1.
        let mut session = handle
            .open_session("roomy", diamond_csr(), 2, None)
            .unwrap();
        session.apply(&CsrDelta::CompleteTask { task: 0 }).unwrap();
        let full = CostEstimate::kernel(session.csr().n(), session.csr().edge_count()).work;
        assert!(session.estimated_event_cost().work < full);
        service.shutdown();
    }

    #[test]
    fn solve_errors_leave_the_session_usable() {
        let service = SchedulingService::builder()
            .workers(0)
            .tenant("acme", TenantPolicy::unlimited())
            .build();
        let handle = service.handle();
        let mut session = handle.open_session("acme", diamond_csr(), 2, None).unwrap();
        session.apply(&CsrDelta::CompleteTask { task: 1 }).unwrap();
        let err = session
            .apply(&CsrDelta::Recost {
                task: 1,
                p: Some(9.0),
                s: None,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Solve(ModelError::InvalidParameter { .. })
        ));
        // The refused re-estimate left the instance untouched and the
        // session live.
        assert_eq!(session.csr().p(1), 3.0);
        session
            .apply(&CsrDelta::Recost {
                task: 3,
                p: Some(9.0),
                s: None,
            })
            .unwrap();
        let stats = handle.stats();
        assert_eq!(stats.tenant("acme").unwrap().failed, 1);
        service.shutdown();
    }

    #[test]
    fn shutdown_refuses_further_session_events() {
        let service = SchedulingService::builder()
            .workers(0)
            .tenant("acme", TenantPolicy::unlimited())
            .build();
        let handle = service.handle();
        let mut session = handle.open_session("acme", diamond_csr(), 2, None).unwrap();
        service.shutdown();
        let err = session
            .apply(&CsrDelta::CompleteTask { task: 0 })
            .unwrap_err();
        assert!(matches!(err, ServiceError::ShuttingDown));
        assert!(matches!(
            handle.open_session("acme", diamond_csr(), 2, None),
            Err(ServiceError::ShuttingDown)
        ));
    }
}
