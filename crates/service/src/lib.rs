//! # sws-service — scheduling as a service
//!
//! An in-process, multi-threaded scheduling service over the solver
//! portfolio: heavy multi-tenant traffic of `P | p_j, s_j | Cmax, Mmax`
//! requests (Saule–Dutot–Mounié, IPDPS 2008) flows through a bounded
//! priority queue into a worker pool, with **cost-gated admission**
//! deciding — before any scheduling work is spent — whether each
//! request is admitted, degraded to a cheaper guarantee, or refused.
//!
//! The service is built from parts the workspace already had, glued by
//! the two vocabularies added for it:
//!
//! * `sws_model::solve` — requests, solutions, guarantees, and the
//!   [`CostEstimate`](sws_model::solve::CostEstimate) work units every
//!   backend now reports pre-dispatch;
//! * `sws_model::policy` — [`TenantPolicy`](sws_model::TenantPolicy),
//!   [`AdmissionVerdict`](sws_model::AdmissionVerdict) and the typed
//!   [`QuotaError`](sws_model::QuotaError) refusals;
//! * `sws_core::portfolio` — backend auto-selection and
//!   [`Portfolio::plan`](sws_core::portfolio::Portfolio::plan), the
//!   admission hook;
//! * `sws_core::dispatch` — the per-worker selection + reusable-
//!   workspace routine shared with `BatchScheduler::run_requests`, so
//!   served results are **bit-identical** to direct `Portfolio::solve`
//!   calls.
//!
//! No async runtime is involved: workers are `std` threads, the queue
//! is `Mutex` + `Condvar`, completions are `mpsc` one-shots — the
//! workspace builds fully offline.
//!
//! The runtime is **fault-tolerant** (see `docs/RELIABILITY.md`):
//! backend panics are caught at the worker boundary and resolved as
//! typed [`ServiceError::SolverPanicked`] outcomes, cancellation and
//! deadlines are observed *mid-solve* through the cooperative
//! [`CancelProbe`](sws_model::cancel::CancelProbe), transient failures
//! retry under the tenant's
//! [`RetryPolicy`](sws_model::policy::RetryPolicy), and the seeded
//! chaos harness in [`faults`] drives all of it deterministically.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use sws_model::prelude::*;
//! use sws_service::{SchedulingService, ServiceRequest};
//!
//! let service = SchedulingService::builder()
//!     .workers(2)
//!     .tenant("acme", TenantPolicy::unlimited())
//!     .build();
//! let handle = service.handle();
//!
//! let inst = Arc::new(Instance::from_ps(
//!     &[8.0, 6.0, 1.0, 1.0, 4.0, 2.0],
//!     &[1.0, 2.0, 7.0, 9.0, 3.0, 5.0],
//!     2,
//! ).unwrap());
//! let ticket = handle
//!     .submit(ServiceRequest::independent(
//!         "acme",
//!         Arc::clone(&inst),
//!         ObjectiveMode::BiObjective { delta: 1.0 },
//!     ))
//!     .unwrap();
//! let solution = ticket.wait().unwrap();
//! assert!(solution.point.cmax > 0.0);
//! service.shutdown();
//! ```

#![forbid(unsafe_code)]

pub mod faults;
pub mod queue;
pub mod request;
pub mod service;
pub mod session;
pub mod stats;

pub use faults::{silence_injected_panics, FaultPlan, FaultySolver, INJECTED_PANIC_MARKER};
pub use request::{ServiceInstance, ServiceRequest};
pub use service::{
    SchedulingService, ServiceBuilder, ServiceError, ServiceHandle, ServiceOutcome, Ticket,
};
pub use session::SessionTicket;
pub use stats::{ScopeStats, ServiceStats};

#[cfg(test)]
mod tests {
    use std::sync::Arc;
    use std::time::Duration;

    use sws_core::portfolio::Portfolio;
    use sws_model::policy::{
        AdmissionVerdict, OverflowPolicy, QuotaError, ShedPolicy, TenantPolicy,
    };
    use sws_model::solve::{BackendId, Guarantee, ObjectiveMode};
    use sws_model::{Instance, ModelError};
    use sws_workloads::random::random_instance;
    use sws_workloads::rng::seeded_rng;
    use sws_workloads::TaskDistribution;

    use super::*;

    fn instance(n: usize, m: usize, seed: u64) -> Arc<Instance> {
        Arc::new(random_instance(
            n,
            m,
            TaskDistribution::AntiCorrelated,
            &mut seeded_rng(seed),
        ))
    }

    #[test]
    fn served_solution_is_bit_identical_to_a_direct_portfolio_solve() {
        let service = SchedulingService::builder()
            .workers(1)
            .tenant("t", TenantPolicy::unlimited())
            .build();
        let inst = instance(40, 4, 1);
        let objective = ObjectiveMode::BiObjective { delta: 2.5 };
        let ticket = service
            .handle()
            .submit(ServiceRequest::independent(
                "t",
                Arc::clone(&inst),
                objective,
            ))
            .unwrap();
        let served = ticket.wait().unwrap();
        let direct = Portfolio::standard()
            .solve(&sws_model::SolveRequest::independent(&inst, objective))
            .unwrap();
        assert_eq!(served.schedule, direct.schedule);
        assert_eq!(served.point, direct.point);
        assert_eq!(served.stats.backend, direct.stats.backend);
        assert_eq!(served.stats.cost, direct.stats.cost);
        let stats = service.shutdown();
        assert_eq!(stats.global.admitted, 1);
        assert_eq!(stats.global.completed, 1);
        assert_eq!(stats.global.in_flight, 0);
    }

    #[test]
    fn unknown_tenants_are_refused_unless_a_default_policy_exists() {
        let service = SchedulingService::builder()
            .workers(1)
            .tenant("known", TenantPolicy::unlimited())
            .build();
        let inst = instance(10, 2, 2);
        let err = service
            .handle()
            .submit(ServiceRequest::independent(
                "ghost",
                Arc::clone(&inst),
                ObjectiveMode::CmaxOnly,
            ))
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Refused(QuotaError::UnknownTenant { .. })
        ));
        assert_eq!(service.handle().stats().global.refused, 1);
        drop(service);

        let service = SchedulingService::builder()
            .workers(1)
            .default_policy(TenantPolicy::unlimited())
            .build();
        let ticket = service
            .handle()
            .submit(ServiceRequest::independent(
                "ghost",
                Arc::clone(&inst),
                ObjectiveMode::CmaxOnly,
            ))
            .unwrap();
        assert!(ticket.wait().is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.tenant("*").unwrap().completed, 1);
    }

    #[test]
    fn in_flight_quota_refuses_under_reject_and_absorbs_under_queue() {
        // Zero workers: jobs stay queued, making quota state
        // deterministic.
        let reject = TenantPolicy::unlimited()
            .with_max_in_flight(2)
            .with_overflow(OverflowPolicy::Reject);
        let service = SchedulingService::builder()
            .workers(0)
            .tenant("r", reject)
            .tenant(
                "q",
                TenantPolicy::unlimited()
                    .with_max_in_flight(1)
                    .with_overflow(OverflowPolicy::Queue),
            )
            .build();
        let handle = service.handle();
        let inst = instance(30, 3, 3);
        let request = |tenant: &str| {
            ServiceRequest::independent(tenant, Arc::clone(&inst), ObjectiveMode::CmaxOnly)
        };

        let _t1 = handle.submit(request("r")).unwrap();
        let _t2 = handle.submit(request("r")).unwrap();
        let err = handle.submit(request("r")).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Refused(QuotaError::InFlightExceeded {
                in_flight: 2,
                limit: 2,
                ..
            })
        ));

        // The Queue tenant sails past its quota into the bounded queue.
        let _q1 = handle.submit(request("q")).unwrap();
        let _q2 = handle.submit(request("q")).unwrap();
        let _q3 = handle.submit(request("q")).unwrap();
        let stats = handle.stats();
        assert_eq!(stats.tenant("r").unwrap().refused, 1);
        assert_eq!(stats.tenant("q").unwrap().admitted, 3);
        assert_eq!(stats.queue_depth, 5);
        // Shutdown resolves the queued-but-never-dispatched jobs.
        let final_stats = service.shutdown();
        assert_eq!(final_stats.global.in_flight, 0);
        assert_eq!(final_stats.queue_depth, 0);
    }

    #[test]
    fn queue_full_refuses_regardless_of_policy() {
        let service = SchedulingService::builder()
            .workers(0)
            .queue_capacity(2)
            .tenant(
                "t",
                TenantPolicy::unlimited().with_overflow(OverflowPolicy::Queue),
            )
            .build();
        let handle = service.handle();
        let inst = instance(12, 2, 4);
        let request =
            || ServiceRequest::independent("t", Arc::clone(&inst), ObjectiveMode::CmaxOnly);
        let _a = handle.submit(request()).unwrap();
        let _b = handle.submit(request()).unwrap();
        let err = handle.submit(request()).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Refused(QuotaError::QueueFull { capacity: 2 })
        ));
        service.shutdown();
    }

    #[test]
    fn work_gate_refuses_or_degrades_per_policy() {
        // An Exact demand on n = 16, m = 3 plans the branch-and-bound at
        // m^n ≈ 4.3e7 work units — over the gate below.
        let inst = instance(16, 3, 5);
        let gate = 1_000_000.0;

        let service = SchedulingService::builder()
            .workers(1)
            .tenant(
                "strict",
                TenantPolicy::unlimited().with_max_estimated_work(gate),
            )
            .tenant(
                "flex",
                TenantPolicy::unlimited()
                    .with_max_estimated_work(gate)
                    .with_overflow(OverflowPolicy::Degrade),
            )
            .build();
        let handle = service.handle();
        let request = |tenant: &str| {
            ServiceRequest::independent(tenant, Arc::clone(&inst), ObjectiveMode::CmaxOnly)
                .with_guarantee(Guarantee::Exact)
        };

        let err = handle.submit(request("strict")).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Refused(QuotaError::WorkExceeded { .. })
        ));

        let ticket = handle.submit(request("flex")).unwrap();
        let AdmissionVerdict::Degraded {
            from, to, backend, ..
        } = ticket.verdict().clone()
        else {
            panic!("expected a degraded admission, got {:?}", ticket.verdict());
        };
        assert_eq!(from, Guarantee::Exact);
        assert_eq!(to, Guarantee::PaperRatio);
        assert_eq!(backend, BackendId::Lpt);
        assert_eq!(ticket.effective_guarantee(), Guarantee::PaperRatio);
        let served = ticket.wait().unwrap();
        // Bit-identical to solving directly at the degraded level.
        let direct = Portfolio::standard()
            .solve(
                &sws_model::SolveRequest::independent(&inst, ObjectiveMode::CmaxOnly)
                    .with_guarantee(Guarantee::PaperRatio),
            )
            .unwrap();
        assert_eq!(served.schedule, direct.schedule);
        assert_eq!(served.stats.backend, direct.stats.backend);
        let stats = service.shutdown();
        assert_eq!(stats.tenant("flex").unwrap().degraded, 1);
        assert_eq!(stats.tenant("strict").unwrap().refused, 1);
    }

    #[test]
    fn no_qualified_backend_surfaces_and_degrades_per_policy() {
        // Exact on 400 tasks qualifies no backend.
        let inst = instance(400, 8, 6);
        let service = SchedulingService::builder()
            .workers(1)
            .tenant("strict", TenantPolicy::unlimited())
            .tenant(
                "flex",
                TenantPolicy::unlimited().with_overflow(OverflowPolicy::Degrade),
            )
            .build();
        let handle = service.handle();
        let request = |tenant: &str| {
            ServiceRequest::independent(tenant, Arc::clone(&inst), ObjectiveMode::CmaxOnly)
                .with_guarantee(Guarantee::Exact)
        };
        let err = handle.submit(request("strict")).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Solve(ModelError::NoQualifiedBackend { .. })
        ));
        let ticket = handle.submit(request("flex")).unwrap();
        assert!(matches!(
            ticket.verdict(),
            AdmissionVerdict::Degraded { .. }
        ));
        assert!(ticket.wait().is_ok());
        service.shutdown();
    }

    #[test]
    fn guarantee_floor_raises_requests_and_bounds_degradation() {
        // Floor = PaperRatio: a no-guarantee request is served at
        // PaperRatio anyway.
        let inst = instance(60, 4, 7);
        let service = SchedulingService::builder()
            .workers(1)
            .tenant(
                "sla",
                TenantPolicy::unlimited().with_guarantee_floor(Guarantee::PaperRatio),
            )
            .tenant(
                "exact-floor",
                TenantPolicy::unlimited()
                    .with_guarantee_floor(Guarantee::Exact)
                    .with_overflow(OverflowPolicy::Degrade),
            )
            .build();
        let handle = service.handle();
        let ticket = handle
            .submit(ServiceRequest::independent(
                "sla",
                Arc::clone(&inst),
                ObjectiveMode::CmaxOnly,
            ))
            .unwrap();
        assert_eq!(ticket.effective_guarantee(), Guarantee::PaperRatio);
        assert!(ticket.wait().is_ok());

        // An Exact floor forbids degrading to PaperRatio: with no exact
        // backend for n = 60 the request must fail, not silently weaken
        // the tenant's SLA.
        let err = handle
            .submit(ServiceRequest::independent(
                "exact-floor",
                Arc::clone(&inst),
                ObjectiveMode::CmaxOnly,
            ))
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Solve(ModelError::NoQualifiedBackend { .. })
        ));
        service.shutdown();
    }

    #[test]
    fn budget_not_met_surfaces_through_the_ticket() {
        // A memory budget below anything achievable but above every
        // single task's storage: the solve reports BudgetNotMet.
        let inst = Arc::new(Instance::from_ps(&[1.0, 1.0, 1.0], &[4.0, 4.0, 4.0], 2).unwrap());
        let service = SchedulingService::builder()
            .workers(1)
            .tenant("t", TenantPolicy::unlimited())
            .build();
        let ticket = service
            .handle()
            .submit(ServiceRequest::independent(
                "t",
                inst,
                ObjectiveMode::MemoryBudget { budget: 5.0 },
            ))
            .unwrap();
        let err = ticket.wait().unwrap_err();
        assert!(
            matches!(err, ServiceError::Solve(ModelError::BudgetNotMet { .. })),
            "got {err:?}"
        );
        let stats = service.shutdown();
        assert_eq!(stats.global.failed, 1);
        assert_eq!(stats.global.completed, 0);
    }

    #[test]
    fn deadline_expired_requests_are_not_dispatched() {
        let service = SchedulingService::builder()
            .workers(0)
            .tenant("t", TenantPolicy::unlimited())
            .build();
        let inst = instance(20, 2, 8);
        let ticket = service
            .handle()
            .submit(
                ServiceRequest::independent("t", inst, ObjectiveMode::CmaxOnly)
                    .with_deadline(Duration::ZERO),
            )
            .unwrap();
        // No workers ran; shutdown resolves it — but a cancelled or
        // expired job never reaches a dispatcher either way. Exercise
        // the worker path too, via a second service with a worker.
        drop(service);
        let err = ticket.wait().unwrap_err();
        assert!(matches!(
            err,
            ServiceError::ShuttingDown | ServiceError::DeadlineExpired
        ));

        let service = SchedulingService::builder()
            .workers(1)
            .tenant("t", TenantPolicy::unlimited())
            .build();
        let inst = instance(20, 2, 9);
        let ticket = service
            .handle()
            .submit(
                ServiceRequest::independent("t", inst, ObjectiveMode::CmaxOnly)
                    .with_deadline(Duration::ZERO),
            )
            .unwrap();
        assert_eq!(ticket.wait().unwrap_err(), ServiceError::DeadlineExpired);
        let stats = service.shutdown();
        assert_eq!(stats.global.expired, 1);
    }

    #[test]
    fn cancellation_before_dispatch_is_observed() {
        let service = SchedulingService::builder()
            .workers(0)
            .tenant("t", TenantPolicy::unlimited())
            .build();
        let inst = instance(20, 2, 10);
        let ticket = service
            .handle()
            .submit(ServiceRequest::independent(
                "t",
                inst,
                ObjectiveMode::CmaxOnly,
            ))
            .unwrap();
        ticket.cancel();
        let stats = service.shutdown();
        assert_eq!(ticket.wait().unwrap_err(), ServiceError::Cancelled);
        assert_eq!(stats.global.cancelled, 1);
    }

    #[test]
    fn cancellation_after_dispatch_is_observed_mid_solve() {
        // One worker, every request stalled for far longer than the
        // test tolerates: only the cooperative probe can resolve the
        // ticket in time.
        let plan = Arc::new(faults::FaultPlan::new(1).with_delays(1.0, Duration::from_secs(30)));
        let service = SchedulingService::builder()
            .workers(1)
            .tenant("t", TenantPolicy::unlimited())
            .portfolio(plan.wrap(Portfolio::standard()))
            .build();
        let handle = service.handle();
        let ticket = handle
            .submit(ServiceRequest::independent(
                "t",
                instance(20, 2, 21),
                ObjectiveMode::CmaxOnly,
            ))
            .unwrap();
        // Wait until the worker has picked the job up (queue empty,
        // still in flight) so the cancel races nothing.
        let started = std::time::Instant::now();
        loop {
            let stats = handle.stats();
            if stats.queue_depth == 0 && stats.global.in_flight == 1 {
                break;
            }
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "worker never picked the job up"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        ticket.cancel();
        let outcome = ticket.wait();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "mid-solve cancellation took {:?}",
            started.elapsed()
        );
        assert_eq!(outcome.unwrap_err(), ServiceError::Cancelled);
        let stats = service.shutdown();
        assert_eq!(stats.global.cancelled, 1);
        assert_eq!(stats.global.completed, 0);
        assert_eq!(stats.global.in_flight, 0);
    }

    #[test]
    fn solver_panics_are_isolated_and_the_pool_survives() {
        faults::silence_injected_panics();
        // Every request panics; no retry budget: each must resolve to
        // SolverPanicked while both workers keep draining.
        let plan = Arc::new(faults::FaultPlan::new(2).with_panics(1.0));
        let service = SchedulingService::builder()
            .workers(2)
            .tenant("t", TenantPolicy::unlimited())
            .portfolio(plan.wrap(Portfolio::standard()))
            .build();
        let requests = (0..8usize)
            .map(|i| {
                ServiceRequest::independent(
                    "t",
                    instance(12 + i, 2, 30 + i as u64),
                    ObjectiveMode::CmaxOnly,
                )
            })
            .collect();
        let outcomes = service.run_all(requests);
        assert_eq!(outcomes.len(), 8);
        for outcome in &outcomes {
            let err = outcome.as_ref().unwrap_err();
            assert!(
                matches!(err, ServiceError::SolverPanicked { message, .. }
                    if message.contains(faults::INJECTED_PANIC_MARKER)),
                "expected SolverPanicked, got {err:?}"
            );
        }
        let stats = service.shutdown();
        assert_eq!(stats.global.panicked, 8);
        assert_eq!(stats.global.completed, 0);
        assert_eq!(stats.global.terminal_outcomes(), 8);
        assert_eq!(stats.global.in_flight, 0);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn retry_policy_recovers_a_transient_panic() {
        faults::silence_injected_panics();
        use sws_model::policy::RetryPolicy;
        // Panics are transient (first attempt only); three attempts of
        // budget: the retry must land a completed solution.
        let plan = Arc::new(
            faults::FaultPlan::new(3)
                .with_panics(1.0)
                .with_transient_panics(),
        );
        let service = SchedulingService::builder()
            .workers(1)
            .tenant(
                "t",
                TenantPolicy::unlimited().with_retry(RetryPolicy::with_attempts(3)),
            )
            .portfolio(plan.wrap(Portfolio::standard()))
            .build();
        let inst = instance(24, 3, 40);
        let ticket = service
            .handle()
            .submit(ServiceRequest::independent(
                "t",
                Arc::clone(&inst),
                ObjectiveMode::CmaxOnly,
            ))
            .unwrap();
        let solution = ticket.wait().expect("the retry should recover");
        assert_eq!(solution.stats.attempts, 2);
        // The recovered solution matches a direct solve exactly.
        let direct = Portfolio::standard()
            .solve(&sws_model::SolveRequest::independent(
                &inst,
                ObjectiveMode::CmaxOnly,
            ))
            .unwrap();
        assert_eq!(solution.schedule, direct.schedule);
        let stats = service.shutdown();
        assert_eq!(stats.global.retried, 1);
        assert_eq!(stats.global.completed, 1);
        assert_eq!(stats.global.panicked, 0);
        assert_eq!(stats.global.terminal_outcomes(), 1);
    }

    #[test]
    fn queue_full_purges_dead_jobs_before_refusing() {
        // Capacity 2, zero workers. Fill the queue, cancel both queued
        // jobs, and submit again: the purge must evict the dead jobs
        // and admit the newcomer instead of refusing.
        let service = SchedulingService::builder()
            .workers(0)
            .queue_capacity(2)
            .tenant("t", TenantPolicy::unlimited())
            .build();
        let handle = service.handle();
        let inst = instance(10, 2, 50);
        let request =
            || ServiceRequest::independent("t", Arc::clone(&inst), ObjectiveMode::CmaxOnly);
        let a = handle.submit(request()).unwrap();
        let b = handle.submit(request()).unwrap();
        a.cancel();
        b.cancel();
        let c = handle.submit(request()).expect("purge must free capacity");
        assert_eq!(a.wait().unwrap_err(), ServiceError::Cancelled);
        assert_eq!(b.wait().unwrap_err(), ServiceError::Cancelled);
        let stats = handle.stats();
        assert_eq!(stats.global.cancelled, 2);
        assert_eq!(stats.queue_depth, 1);
        assert_eq!(stats.global.in_flight, 1);
        drop(c);
        service.shutdown();
    }

    #[test]
    fn global_in_flight_gauge_tracks_queued_requests() {
        let service = SchedulingService::builder()
            .workers(0)
            .tenant("a", TenantPolicy::unlimited())
            .tenant("b", TenantPolicy::unlimited())
            .build();
        let handle = service.handle();
        let inst = instance(10, 2, 14);
        let _t1 = handle
            .submit(ServiceRequest::independent(
                "a",
                Arc::clone(&inst),
                ObjectiveMode::CmaxOnly,
            ))
            .unwrap();
        let _t2 = handle
            .submit(ServiceRequest::independent(
                "b",
                Arc::clone(&inst),
                ObjectiveMode::CmaxOnly,
            ))
            .unwrap();
        let stats = handle.stats();
        assert_eq!(stats.global.in_flight, 2);
        assert_eq!(stats.tenant("a").unwrap().in_flight, 1);
        assert_eq!(stats.tenant("b").unwrap().in_flight, 1);
        assert_eq!(service.shutdown().global.in_flight, 0);
    }

    #[test]
    fn dropping_an_idle_zero_worker_service_closes_its_handles() {
        let service = SchedulingService::builder()
            .workers(0)
            .tenant("t", TenantPolicy::unlimited())
            .build();
        let handle = service.handle();
        drop(service);
        let err = handle
            .submit(ServiceRequest::independent(
                "t",
                instance(10, 2, 15),
                ObjectiveMode::CmaxOnly,
            ))
            .unwrap_err();
        assert_eq!(err, ServiceError::ShuttingDown);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn registering_the_reserved_star_tenant_with_a_default_policy_panics() {
        let _ = SchedulingService::builder()
            .workers(0)
            .tenant("*", TenantPolicy::unlimited())
            .default_policy(TenantPolicy::unlimited())
            .build();
    }

    #[test]
    fn concurrent_submits_cannot_exceed_the_in_flight_quota() {
        // Zero workers: nothing drains, so the reservation CAS is the
        // only thing standing between 8 racing submitters and the
        // quota.
        let quota = 5usize;
        let service = SchedulingService::builder()
            .workers(0)
            .queue_capacity(256)
            .tenant("t", TenantPolicy::unlimited().with_max_in_flight(quota))
            .build();
        let handle = service.handle();
        let inst = instance(10, 2, 16);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let handle = handle.clone();
                let inst = Arc::clone(&inst);
                scope.spawn(move || {
                    for _ in 0..4 {
                        let _ = handle.submit(ServiceRequest::independent(
                            "t",
                            Arc::clone(&inst),
                            ObjectiveMode::CmaxOnly,
                        ));
                    }
                });
            }
        });
        let stats = handle.stats();
        assert!(
            stats.tenant("t").unwrap().in_flight <= quota,
            "quota must hold under concurrent submission: {} > {quota}",
            stats.tenant("t").unwrap().in_flight
        );
        assert_eq!(stats.tenant("t").unwrap().admitted as usize, quota);
        service.shutdown();
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let service = SchedulingService::builder()
            .workers(1)
            .tenant("t", TenantPolicy::unlimited())
            .build();
        let handle = service.handle();
        service.shutdown();
        let inst = instance(10, 2, 11);
        let err = handle
            .submit(ServiceRequest::independent(
                "t",
                inst,
                ObjectiveMode::CmaxOnly,
            ))
            .unwrap_err();
        assert_eq!(err, ServiceError::ShuttingDown);
    }

    #[test]
    fn probe_matches_submit_without_counting() {
        let service = SchedulingService::builder()
            .workers(1)
            .tenant("t", TenantPolicy::unlimited())
            .build();
        let handle = service.handle();
        let inst = instance(40, 4, 12);
        let request = ServiceRequest::independent(
            "t",
            Arc::clone(&inst),
            ObjectiveMode::BiObjective { delta: 1.0 },
        );
        let probed = handle.probe(&request).unwrap();
        assert_eq!(probed.backend(), Some(BackendId::Sbo));
        assert_eq!(handle.stats().global.admitted, 0);
        let ticket = handle.submit(request).unwrap();
        assert_eq!(ticket.verdict(), &probed);
        ticket.wait().unwrap();
        service.shutdown();
    }

    #[test]
    fn overload_shedding_refuses_with_the_typed_reason() {
        // Zero workers: the backlog accumulates deterministically.
        let service = SchedulingService::builder()
            .workers(0)
            .queue_capacity(64)
            .tenant(
                "t",
                TenantPolicy::unlimited().with_shed(ShedPolicy::on_queue_depth(2, 0)),
            )
            .build();
        let handle = service.handle();
        let inst = instance(10, 2, 21);
        let mk = || ServiceRequest::independent("t", Arc::clone(&inst), ObjectiveMode::CmaxOnly);
        handle.submit(mk()).unwrap();
        handle.submit(mk()).unwrap();
        // The lane sits at the high watermark. `probe` already reports
        // the overload refusal, without counting anything...
        let probed = handle.probe(&mk()).unwrap();
        assert!(
            matches!(
                probed,
                AdmissionVerdict::Refused {
                    reason: QuotaError::Overloaded { .. }
                }
            ),
            "probe saw {probed:?}"
        );
        assert_eq!(handle.stats().tenant("t").unwrap().shed, 0);
        // ...and the real submit is refused with the typed reason (the
        // default request carries no strong guarantee to degrade).
        let err = handle.submit(mk()).unwrap_err();
        assert!(
            matches!(err, ServiceError::Refused(QuotaError::Overloaded { .. })),
            "got {err:?}"
        );
        let stats = handle.stats();
        let t = stats.tenant("t").unwrap();
        assert_eq!((t.shed, t.refused, t.admitted), (1, 1, 2));
        assert_eq!(t.queued, 2);
        assert_eq!(stats.global.shed, 1);
        service.shutdown();
    }

    #[test]
    fn overload_shedding_degrades_strong_guarantees_before_refusing() {
        let service = SchedulingService::builder()
            .workers(0)
            .queue_capacity(64)
            .tenant(
                "t",
                TenantPolicy::unlimited().with_shed(ShedPolicy::on_queue_depth(1, 0)),
            )
            .build();
        let handle = service.handle();
        let inst = instance(12, 2, 22);
        let mk = || {
            ServiceRequest::independent("t", Arc::clone(&inst), ObjectiveMode::CmaxOnly)
                .with_guarantee(Guarantee::Exact)
        };
        let first = handle.submit(mk()).unwrap();
        assert!(matches!(first.verdict(), AdmissionVerdict::Admitted { .. }));
        // Backlog at the watermark: the next Exact request walks the
        // shed ladder — still admitted, but at the paper tier.
        let second = handle.submit(mk()).unwrap();
        assert!(
            matches!(
                second.verdict(),
                AdmissionVerdict::Degraded {
                    from: Guarantee::Exact,
                    to: Guarantee::PaperRatio,
                    ..
                }
            ),
            "got {:?}",
            second.verdict()
        );
        assert_eq!(second.effective_guarantee(), Guarantee::PaperRatio);
        let stats = handle.stats();
        let t = stats.tenant("t").unwrap();
        assert_eq!((t.shed, t.degraded, t.refused, t.admitted), (1, 1, 0, 2));
        service.shutdown();
    }

    #[test]
    fn stats_expose_per_tenant_lane_gauges() {
        let service = SchedulingService::builder()
            .workers(0)
            .queue_capacity(64)
            .tenant("a", TenantPolicy::unlimited().with_weight(3))
            .tenant("b", TenantPolicy::unlimited())
            .build();
        let handle = service.handle();
        let inst = instance(10, 2, 23);
        for _ in 0..3 {
            handle
                .submit(ServiceRequest::independent(
                    "a",
                    Arc::clone(&inst),
                    ObjectiveMode::CmaxOnly,
                ))
                .unwrap();
        }
        handle
            .submit(ServiceRequest::independent(
                "b",
                Arc::clone(&inst),
                ObjectiveMode::CmaxOnly,
            ))
            .unwrap();
        let stats = handle.stats();
        assert_eq!(stats.tenant("a").unwrap().queued, 3);
        assert_eq!(stats.tenant("b").unwrap().queued, 1);
        assert_eq!(stats.global.queued, 4);
        assert_eq!(stats.global.queued, stats.queue_depth);
        assert!(stats.tenant("a").unwrap().head_wait.is_some());
        // No completions yet: the recent-latency window is empty.
        assert_eq!(stats.tenant("a").unwrap().recent_p99, None);
        service.shutdown();
    }

    #[test]
    fn completions_populate_the_recent_latency_window() {
        let service = SchedulingService::builder()
            .workers(1)
            .tenant("t", TenantPolicy::unlimited())
            .build();
        let handle = service.handle();
        let ticket = handle
            .submit(ServiceRequest::independent(
                "t",
                instance(20, 2, 24),
                ObjectiveMode::CmaxOnly,
            ))
            .unwrap();
        ticket.wait().unwrap();
        let stats = handle.stats();
        assert!(stats.tenant("t").unwrap().recent_p99.is_some());
        assert!(stats.tenant("t").unwrap().p99_latency.is_some());
        service.shutdown();
    }
}
