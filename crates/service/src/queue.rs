//! A bounded, blocking **work-unit-weighted deficit-round-robin**
//! queue over `Mutex` + `Condvar`.
//!
//! The strict-priority heap this file used to hold had one documented
//! flaw: a flooding tenant at any priority level starves every lower
//! level indefinitely. The queue is now fair by construction. Each
//! tenant owns a *lane* — a sub-queue ordered `(priority desc, seq
//! asc)`, so priorities still order a tenant's **own** work — and the
//! lanes are served by deficit round robin ([`DRR`], Shreedhar &
//! Varghese) *charged in the same `CostEstimate` work units the
//! admission path already computes*:
//!
//! * every backlogged lane holds a **deficit counter**; a lane at the
//!   front of the rotation is served while its deficit covers the head
//!   job's work, then rotates to the back;
//! * arriving at the front grants the lane `weight × quantum` fresh
//!   deficit, where `quantum` is the running maximum work unit seen —
//!   large enough that every granted visit serves at least one job, so
//!   a pop completes within one rotation (no livelock, `O(lanes)`
//!   worst case);
//! * a lane that goes **empty resets its deficit**: idle tenants lend
//!   their share to the backlogged ones instead of banking it — the
//!   queue is *work-conserving* (a lone backlogged lane receives the
//!   entire service rate);
//! * **aging** bounds worst-case wait: a lane head that has been
//!   queued longer than the configured age limit is served next,
//!   out of rotation (its lane's deficit is still charged, saturating
//!   at zero), so no admitted job waits forever behind heavier-
//!   weighted neighbours — the wait for a tenant's next-in-line job is
//!   bounded by `age_limit` plus one in-flight solve.
//!
//! Long-run service share of a continuously backlogged lane is
//! `weight / Σ weights` over the backlogged lanes, with per-round
//! burstiness bounded by `weight × quantum + max job work` (the
//! classic DRR fairness bound in work units).
//!
//! Everything else is unchanged from the strict-priority predecessor:
//! a hard capacity on the producer side (a full queue *refuses* with a
//! typed reason instead of blocking), close-then-drain shutdown
//! semantics, and poison-recovering lock acquisition.
//!
//! # Poison recovery
//!
//! Every lock acquisition recovers from poisoning instead of
//! propagating it. The critical sections below only touch heap/deque
//! operations and field assignments, none of which leave the structure
//! torn if a caller's panic unwinds *outside* the section — and the
//! fault-isolation contract of the service (workers catch backend
//! panics but must keep serving) means a single panicking request must
//! never wedge the queue for every other tenant.
//!
//! # Locking
//!
//! One mutex guards *all* lanes. Per-lane locks would buy nothing (a
//! pop inspects the rotation, which spans lanes) and would create a
//! lock-order surface — the `lock_lanes.rs` fixture in `sws-lint`
//! pins exactly the AB/BA deadlock shape that design would invite.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Why a push was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The queue is at capacity.
    Full,
    /// The queue was closed ([`JobQueue::close`]).
    Closed,
    /// The lane index is not one the queue was built with.
    NoSuchLane,
}

/// One queued item. Within a lane, entries pop by `(priority desc,
/// seq asc)` — higher priorities first, FIFO within a priority level.
struct Entry<T> {
    priority: u8,
    seq: u64,
    /// The job's pre-dispatch work estimate in shared work units
    /// (≥ 1); what the lane's deficit is charged on pop.
    work: u64,
    /// When the entry was pushed — the aging clock.
    enqueued: Instant,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: higher priority wins; within a
        // priority, the *lower* sequence number (earlier submission)
        // must surface first, hence the reversed comparison.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

/// One tenant's sub-queue plus its DRR state.
struct Lane<T> {
    /// DRR weight (≥ 1): long-run service share is proportional.
    weight: u64,
    /// Work units this lane may still spend this rotation.
    deficit: u64,
    /// Whether the lane has already received its deficit grant for the
    /// current front-of-rotation visit.
    granted: bool,
    heap: BinaryHeap<Entry<T>>,
}

impl<T> Lane<T> {
    /// Resets the DRR state after the lane goes empty: an idle lane
    /// lends its share instead of banking it.
    fn reset(&mut self) {
        self.deficit = 0;
        self.granted = false;
    }
}

/// A point-in-time view of one lane, for the stats plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LaneGauge {
    /// Queued entries in the lane.
    pub(crate) depth: usize,
    /// The lane's current deficit counter, in work units.
    pub(crate) deficit: u64,
    /// How long the lane's next-in-line entry has been queued.
    pub(crate) head_wait: Option<Duration>,
}

struct Inner<T> {
    lanes: Vec<Lane<T>>,
    /// Indices of the non-empty lanes, in rotation order (front is
    /// served next).
    rotation: VecDeque<usize>,
    /// Total queued entries across lanes.
    len: usize,
    closed: bool,
    next_seq: u64,
    /// Running maximum work unit seen; the per-visit deficit grant is
    /// `weight × quantum`, which guarantees every granted visit can
    /// serve its head.
    quantum: u64,
}

/// The bounded blocking DRR queue. See the module docs.
pub(crate) struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
    /// Entries queued at least this long are served out of rotation.
    /// `None` disables aging.
    age_limit: Option<Duration>,
}

impl<T> JobQueue<T> {
    /// An open queue holding at most `capacity` items across one lane
    /// per entry of `weights` (clamped to ≥ 1), with the given aging
    /// bound.
    pub(crate) fn new(capacity: usize, weights: &[u32], age_limit: Option<Duration>) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                lanes: weights
                    .iter()
                    .map(|&w| Lane {
                        weight: u64::from(w.max(1)),
                        deficit: 0,
                        granted: false,
                        heap: BinaryHeap::new(),
                    })
                    .collect(),
                rotation: VecDeque::new(),
                len: 0,
                closed: false,
                next_seq: 0,
                quantum: 1,
            }),
            not_empty: Condvar::new(),
            capacity,
            age_limit,
        }
    }

    /// A single-lane queue (weight 1, no aging) — DRR over one lane is
    /// plain `(priority desc, seq asc)` order, the shape single-tenant
    /// tests use.
    #[cfg(test)]
    pub(crate) fn single_lane(capacity: usize) -> Self {
        Self::new(capacity, &[1], None)
    }

    /// The queue's capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Locks the queue state, recovering from poisoning (see the module
    /// docs: the critical sections never leave the structure torn).
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current number of queued items across all lanes.
    pub(crate) fn depth(&self) -> usize {
        self.lock().len
    }

    /// Current number of queued items in one lane (0 for an unknown
    /// lane index).
    pub(crate) fn lane_depth(&self, lane: usize) -> usize {
        self.lock().lanes.get(lane).map_or(0, |l| l.heap.len())
    }

    /// Point-in-time gauges for every lane, in lane order.
    pub(crate) fn gauges(&self) -> Vec<LaneGauge> {
        let now = Instant::now();
        self.lock()
            .lanes
            .iter()
            .map(|lane| LaneGauge {
                depth: lane.heap.len(),
                deficit: lane.deficit,
                head_wait: lane
                    .heap
                    .peek()
                    .map(|e| now.saturating_duration_since(e.enqueued)),
            })
            .collect()
    }

    /// Enqueues `item` on `lane` at `priority`, charging `work` work
    /// units (clamped to ≥ 1) when it is eventually popped. Never
    /// blocks: a full or closed queue returns the item to the caller
    /// with the typed reason.
    pub(crate) fn push(
        &self,
        lane: usize,
        priority: u8,
        work: u64,
        item: T,
    ) -> Result<(), (T, PushError)> {
        let mut inner = self.lock();
        if inner.closed {
            return Err((item, PushError::Closed));
        }
        if inner.len >= self.capacity {
            return Err((item, PushError::Full));
        }
        if lane >= inner.lanes.len() {
            return Err((item, PushError::NoSuchLane));
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let work = work.max(1);
        inner.quantum = inner.quantum.max(work);
        inner.len += 1;
        let newly_active = inner.lanes.get(lane).is_some_and(|l| l.heap.is_empty());
        if let Some(l) = inner.lanes.get_mut(lane) {
            l.heap.push(Entry {
                priority,
                seq,
                work,
                enqueued: Instant::now(),
                item,
            });
        }
        if newly_active {
            inner.rotation.push_back(lane);
        }
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pops the head entry of `lane`, maintaining `len`, the rotation
    /// and the lane's DRR state. `charge` is subtracted from the
    /// lane's deficit (saturating — an aged pop may borrow beyond the
    /// deficit; the debt is forgiven rather than tracked negative,
    /// a bounded fairness giveaway documented in the module docs).
    fn pop_from(inner: &mut Inner<T>, lane_idx: usize) -> Option<T> {
        let lane = inner.lanes.get_mut(lane_idx)?;
        let entry = lane.heap.pop()?;
        inner.len -= 1;
        if lane.heap.is_empty() {
            lane.reset();
            inner.rotation.retain(|&i| i != lane_idx);
        } else {
            lane.deficit = lane.deficit.saturating_sub(entry.work);
        }
        Some(entry.item)
    }

    /// The scheduling core: picks the next entry under aging + DRR.
    /// Returns `None` only when the queue is empty. Must be called
    /// with the lock held.
    fn take_next(inner: &mut Inner<T>, age_limit: Option<Duration>) -> Option<T> {
        if inner.len == 0 {
            return None;
        }

        // Aging first: serve the oldest over-age lane head, out of
        // rotation, so no tenant's next-in-line job waits beyond the
        // bound however the weights are skewed.
        if let Some(limit) = age_limit {
            let now = Instant::now();
            let aged = inner
                .lanes
                .iter()
                .enumerate()
                .filter_map(|(idx, lane)| {
                    lane.heap.peek().and_then(|e| {
                        (now.saturating_duration_since(e.enqueued) >= limit)
                            .then_some((e.enqueued, e.seq, idx))
                    })
                })
                .min();
            if let Some((_, _, idx)) = aged {
                return Self::pop_from(inner, idx);
            }
        }

        // Deficit round robin over the backlogged lanes. Each iteration
        // either serves (and returns) or rotates a lane that has spent
        // its grant; a granted visit always covers the head (the grant
        // is `weight × quantum ≥ quantum ≥` any queued work), so the
        // loop completes within one rotation.
        let mut spins = inner.rotation.len() + 1;
        while spins > 0 {
            spins -= 1;
            let &idx = inner.rotation.front()?;
            let Some(lane) = inner.lanes.get_mut(idx) else {
                inner.rotation.pop_front();
                continue;
            };
            let Some(head) = lane.heap.peek() else {
                // A lane in the rotation is non-empty by invariant;
                // recover anyway rather than spin.
                inner.rotation.pop_front();
                continue;
            };
            let head_work = head.work;
            if !lane.granted {
                lane.granted = true;
                lane.deficit = lane
                    .deficit
                    .saturating_add(lane.weight.saturating_mul(inner.quantum));
            }
            if lane.deficit >= head_work {
                return Self::pop_from(inner, idx);
            }
            // Grant spent: yield the rest of the round.
            lane.granted = false;
            inner.rotation.pop_front();
            inner.rotation.push_back(idx);
        }
        None
    }

    /// Dequeues the next item under the fairness discipline, blocking
    /// while the queue is empty and open. Returns `None` only once the
    /// queue is closed **and** fully drained.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = Self::take_next(&mut inner, self.age_limit) {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeues without blocking: `None` when the queue is currently
    /// empty (used by the shutdown path to drain leftovers when the
    /// service runs without workers).
    pub(crate) fn try_pop(&self) -> Option<T> {
        Self::take_next(&mut self.lock(), self.age_limit)
    }

    /// Removes and returns every queued item matching `pred`,
    /// preserving each lane's `(priority desc, seq asc)` order among
    /// the survivors (their original sequence numbers are kept). Used
    /// to purge jobs that are already cancelled or past their deadline,
    /// so dead work can never hold capacity against live submissions.
    pub(crate) fn drain_matching(&self, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut inner = self.lock();
        let mut removed = Vec::new();
        for lane in inner.lanes.iter_mut() {
            if lane.heap.is_empty() {
                continue;
            }
            let entries = std::mem::take(&mut lane.heap).into_vec();
            for entry in entries {
                if pred(&entry.item) {
                    removed.push(entry.item);
                } else {
                    lane.heap.push(entry);
                }
            }
            if lane.heap.is_empty() {
                lane.reset();
            }
        }
        inner.len -= removed.len();
        let Inner {
            lanes, rotation, ..
        } = &mut *inner;
        rotation.retain(|&i| lanes.get(i).is_some_and(|l| !l.heap.is_empty()));
        removed
    }

    /// Closes the queue: pushes start failing with
    /// [`PushError::Closed`]; pops drain the remaining items and then
    /// return `None`. Idempotent.
    pub(crate) fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn orders_by_priority_then_fifo_within_a_lane() {
        let q: JobQueue<&'static str> = JobQueue::single_lane(8);
        q.push(0, 1, 1, "low-a").unwrap();
        q.push(0, 5, 1, "high-a").unwrap();
        q.push(0, 1, 1, "low-b").unwrap();
        q.push(0, 5, 1, "high-b").unwrap();
        q.close();
        assert_eq!(q.pop(), Some("high-a"));
        assert_eq!(q.pop(), Some("high-b"));
        assert_eq!(q.pop(), Some("low-a"));
        assert_eq!(q.pop(), Some("low-b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_closed_and_unknown_lane_pushes_return_the_item() {
        let q: JobQueue<u32> = JobQueue::new(2, &[1, 1], None);
        q.push(0, 0, 1, 1).unwrap();
        q.push(1, 0, 1, 2).unwrap();
        let (item, reason) = q.push(0, 0, 1, 3).unwrap_err();
        assert_eq!((item, reason), (3, PushError::Full));
        let q2: JobQueue<u32> = JobQueue::new(8, &[1], None);
        let (item, reason) = q2.push(7, 0, 1, 9).unwrap_err();
        assert_eq!((item, reason), (9, PushError::NoSuchLane));
        q.close();
        let (item, reason) = q.push(0, 0, 1, 4).unwrap_err();
        assert_eq!((item, reason), (4, PushError::Closed));
        // The queued items remain drainable after close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_weight_lanes_alternate_under_equal_work() {
        // Two backlogged lanes, equal weights, equal work: DRR serves
        // one job per lane per rotation — strict alternation, however
        // many jobs either lane has queued ahead.
        let q: JobQueue<(usize, u32)> = JobQueue::new(64, &[1, 1], None);
        for i in 0..6u32 {
            q.push(0, 0, 10, (0, i)).unwrap();
        }
        for i in 0..6u32 {
            q.push(1, 0, 10, (1, i)).unwrap();
        }
        q.close();
        let mut order = Vec::new();
        while let Some((lane, i)) = q.pop() {
            order.push((lane, i));
        }
        let lanes: Vec<usize> = order.iter().map(|&(l, _)| l).collect();
        assert_eq!(lanes, vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1]);
        // FIFO within each lane.
        for lane in 0..2 {
            let seq: Vec<u32> = order
                .iter()
                .filter(|&&(l, _)| l == lane)
                .map(|&(_, i)| i)
                .collect();
            assert_eq!(seq, vec![0, 1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn weights_set_the_service_ratio() {
        // Weight 1 vs weight 3, equal work everywhere: each rotation
        // serves 1 job from lane 0 and 3 from lane 1.
        let q: JobQueue<(usize, u32)> = JobQueue::new(64, &[1, 3], None);
        for i in 0..4u32 {
            q.push(0, 0, 10, (0, i)).unwrap();
        }
        for i in 0..12u32 {
            q.push(1, 0, 10, (1, i)).unwrap();
        }
        q.close();
        let mut lanes = Vec::new();
        while let Some((lane, _)) = q.pop() {
            lanes.push(lane);
        }
        assert_eq!(lanes, vec![0, 1, 1, 1, 0, 1, 1, 1, 0, 1, 1, 1, 0, 1, 1, 1]);
    }

    #[test]
    fn work_units_not_job_counts_are_what_is_shared() {
        // Lane 0's jobs are 5× heavier than lane 1's. Equal weights:
        // per rotation lane 0 serves ~1 heavy job (50 units) while
        // lane 1 serves ~5 light ones (10 units each) — equal *work*,
        // not equal job counts.
        let q: JobQueue<(usize, u32)> = JobQueue::new(64, &[1, 1], None);
        for i in 0..3u32 {
            q.push(0, 0, 50, (0, i)).unwrap();
        }
        for i in 0..15u32 {
            q.push(1, 0, 10, (1, i)).unwrap();
        }
        q.close();
        let mut served_work = [0u64; 2];
        let mut max_gap = 0u64;
        while let Some((lane, _)) = q.pop() {
            served_work[lane] += if lane == 0 { 50 } else { 10 };
            if served_work[0] > 0 && served_work[1] > 0 {
                max_gap = max_gap.max(served_work[0].abs_diff(served_work[1]));
            }
        }
        assert_eq!(served_work, [150, 150]);
        // The running work totals never diverge beyond the DRR bound
        // (one grant + one max job = quantum + 50 = 100).
        assert!(max_gap <= 100, "work imbalance peaked at {max_gap}");
    }

    #[test]
    fn an_idle_lane_lends_its_share_and_cannot_bank_it() {
        let q: JobQueue<(usize, u32)> = JobQueue::new(64, &[1, 1], None);
        // Lane 1 alone: receives the entire service rate
        // (work-conserving), with lane 0 idle throughout.
        for i in 0..5u32 {
            q.push(1, 0, 10, (1, i)).unwrap();
        }
        for i in 0..5u32 {
            assert_eq!(q.try_pop(), Some((1, i)));
        }
        // Lane 1 went empty above, so its deficit reset; when both
        // lanes now arrive backlogged, service is an even split — the
        // busy period bought lane 1 no credit and cost lane 0 none.
        for i in 10..14u32 {
            q.push(0, 0, 10, (0, i)).unwrap();
            q.push(1, 0, 10, (1, i)).unwrap();
        }
        q.close();
        let mut lanes = Vec::new();
        while let Some((lane, _)) = q.pop() {
            lanes.push(lane);
        }
        assert_eq!(lanes, vec![0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn aging_serves_over_age_heads_in_global_fifo_order() {
        // Age limit zero: every head is instantly over-age, so pops
        // follow global enqueue order regardless of the 1:7 weights.
        let q: JobQueue<(usize, u32)> = JobQueue::new(64, &[1, 7], Some(Duration::ZERO));
        q.push(0, 0, 10, (0, 0)).unwrap();
        q.push(1, 0, 10, (1, 0)).unwrap();
        q.push(0, 0, 10, (0, 1)).unwrap();
        q.push(1, 0, 10, (1, 1)).unwrap();
        q.close();
        assert_eq!(q.pop(), Some((0, 0)));
        assert_eq!(q.pop(), Some((1, 0)));
        assert_eq!(q.pop(), Some((0, 1)));
        assert_eq!(q.pop(), Some((1, 1)));
    }

    #[test]
    fn far_future_age_limit_never_preempts_the_rotation() {
        let q: JobQueue<(usize, u32)> = JobQueue::new(64, &[1, 1], Some(Duration::from_secs(3600)));
        for i in 0..3u32 {
            q.push(0, 0, 10, (0, i)).unwrap();
            q.push(1, 0, 10, (1, i)).unwrap();
        }
        q.close();
        let mut lanes = Vec::new();
        while let Some((lane, _)) = q.pop() {
            lanes.push(lane);
        }
        assert_eq!(lanes, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn gauges_report_depth_deficit_and_head_wait() {
        let q: JobQueue<u32> = JobQueue::new(8, &[1, 1], None);
        q.push(0, 0, 10, 1).unwrap();
        q.push(0, 0, 10, 2).unwrap();
        let gauges = q.gauges();
        assert_eq!(gauges.len(), 2);
        assert_eq!(gauges[0].depth, 2);
        assert_eq!(gauges[1].depth, 0);
        assert!(gauges[0].head_wait.is_some());
        assert_eq!(gauges[1].head_wait, None);
        assert_eq!(q.lane_depth(0), 2);
        assert_eq!(q.lane_depth(1), 0);
        assert_eq!(q.lane_depth(9), 0);
        // After one pop the lane carries leftover deficit (grant 10,
        // spent 10 → 0 here since grant == work).
        assert_eq!(q.try_pop(), Some(1));
        let gauges = q.gauges();
        assert_eq!(gauges[0].depth, 1);
        q.close();
    }

    #[test]
    fn drain_matching_removes_matches_and_preserves_lane_order() {
        let q: JobQueue<u32> = JobQueue::new(8, &[1, 1], None);
        q.push(0, 1, 1, 10).unwrap();
        q.push(0, 5, 1, 20).unwrap();
        q.push(1, 1, 1, 11).unwrap();
        q.push(1, 5, 1, 21).unwrap();
        let removed = q.drain_matching(|&v| v % 10 == 1);
        assert_eq!(removed.len(), 2);
        assert!(removed.contains(&11) && removed.contains(&21));
        assert_eq!(q.depth(), 2);
        // Survivors keep (priority desc, seq asc) within their lane.
        q.close();
        let mut left = Vec::new();
        while let Some(v) = q.pop() {
            left.push(v);
        }
        left.sort_unstable();
        assert_eq!(left, vec![10, 20]);
    }

    #[test]
    fn draining_a_lane_empty_removes_it_from_the_rotation() {
        let q: JobQueue<u32> = JobQueue::new(8, &[1, 1], None);
        q.push(0, 0, 1, 1).unwrap();
        q.push(1, 0, 1, 2).unwrap();
        let removed = q.drain_matching(|&v| v == 1);
        assert_eq!(removed, vec![1]);
        // Lane 0 is gone from the rotation: pops serve lane 1 then
        // report empty instead of spinning on a stale index.
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
        q.push(0, 0, 1, 3).unwrap();
        assert_eq!(q.try_pop(), Some(3));
        q.close();
    }

    #[test]
    fn a_panic_inside_the_lock_does_not_wedge_the_queue() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        // The marker keeps this intentional panic out of the test logs
        // (CI asserts the service suites emit zero unexpected panics).
        crate::faults::silence_injected_panics();
        let q: JobQueue<u32> = JobQueue::single_lane(4);
        q.push(0, 0, 1, 1).unwrap();
        // `drain_matching` runs the caller predicate while holding the
        // lock; a panicking predicate poisons the mutex. Every later
        // acquisition must recover instead of propagating.
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            q.drain_matching(|_| {
                panic!(
                    "{} predicate exploded",
                    crate::faults::INJECTED_PANIC_MARKER
                )
            });
        }));
        assert!(unwound.is_err());
        assert!(q.inner.is_poisoned());
        q.push(0, 0, 1, 2).unwrap();
        assert!(q.depth() >= 1);
        q.close();
        let mut drained = Vec::new();
        while let Some(v) = q.pop() {
            drained.push(v);
        }
        assert!(drained.contains(&2));
    }

    /// The naive reference: per-lane lists popped by
    /// `(priority desc, seq asc)`.
    type Model = Vec<Vec<(u8, u64, u64)>>;

    fn model_head(model: &[(u8, u64, u64)]) -> Option<usize> {
        model
            .iter()
            .enumerate()
            .max_by_key(|(_, &(p, s, _))| (p, std::cmp::Reverse(s)))
            .map(|(i, _)| i)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Model check against a naive per-lane reference: every pop
        /// returns the head of *some* lane (FIFO-within-tenant and
        /// priority order are exact per lane), `drain_matching`
        /// removes exactly the matching set, depth tracks the model,
        /// and capacity holds across arbitrary interleavings.
        #[test]
        fn queue_matches_a_per_lane_reference_model(
            ops in proptest::collection::vec((0u32..=45, 0usize..3, 1u64..20), 1..80)
        ) {
            const CAP: usize = 10;
            const LANES: usize = 3;
            let q: JobQueue<u64> = JobQueue::new(CAP, &[1, 2, 5], None);
            let mut model: Model = vec![Vec::new(); LANES];
            let mut next_val = 0u64;
            let mut next_seq = 0u64;
            for (op, lane, work) in ops {
                match op {
                    // Push to `lane` at priority op % 4.
                    0..=29 => {
                        let pri = (op % 4) as u8;
                        let val = next_val;
                        next_val += 1;
                        let res = q.push(lane, pri, work, val);
                        let total: usize = model.iter().map(Vec::len).sum();
                        if total >= CAP {
                            prop_assert!(matches!(res, Err((_, PushError::Full))));
                        } else {
                            prop_assert!(res.is_ok());
                            model[lane].push((pri, next_seq, val));
                            next_seq += 1;
                        }
                    }
                    // Pop: the DRR pick must be some lane's exact head.
                    30..=39 => {
                        match q.try_pop() {
                            Some(got) => {
                                let lane = model
                                    .iter()
                                    .position(|m| {
                                        model_head(m).is_some_and(|i| m[i].2 == got)
                                    });
                                prop_assert!(
                                    lane.is_some(),
                                    "popped {got} is not any lane's head"
                                );
                                let lane = lane.unwrap();
                                let head = model_head(&model[lane]).unwrap();
                                model[lane].remove(head);
                            }
                            None => {
                                prop_assert!(model.iter().all(Vec::is_empty));
                            }
                        }
                    }
                    // Purge even values (stand-in for cancelled jobs).
                    _ => {
                        let removed = q.drain_matching(|v| v % 2 == 0);
                        let expect: usize = model
                            .iter()
                            .flatten()
                            .filter(|&&(_, _, v)| v % 2 == 0)
                            .count();
                        for m in model.iter_mut() {
                            m.retain(|&(_, _, v)| v % 2 != 0);
                        }
                        prop_assert_eq!(removed.len(), expect);
                        prop_assert!(removed.iter().all(|v| v % 2 == 0));
                    }
                }
                let total: usize = model.iter().map(Vec::len).sum();
                prop_assert!(q.depth() <= CAP);
                prop_assert_eq!(q.depth(), total);
                for (idx, m) in model.iter().enumerate() {
                    prop_assert_eq!(q.lane_depth(idx), m.len());
                }
            }
            // Drain: every remaining pop is still some lane's head, and
            // the queue empties exactly when the model does.
            q.close();
            while let Some(got) = q.pop() {
                let lane = model
                    .iter()
                    .position(|m| model_head(m).is_some_and(|i| m[i].2 == got))
                    .expect("queue had an item the model does not");
                let head = model_head(&model[lane]).unwrap();
                model[lane].remove(head);
            }
            prop_assert!(model.iter().all(Vec::is_empty));
        }

        /// Fairness: with every lane continuously backlogged (no pops
        /// until all pushes land), a full drain serves cumulative work
        /// per lane within the DRR bound of the weight-proportional
        /// share, at every prefix of the drain.
        #[test]
        fn backlogged_lanes_share_service_by_weight(
            works in proptest::collection::vec(1u64..=16, 24..48),
        ) {
            let weights = [1u32, 3];
            let q: JobQueue<(usize, u64)> = JobQueue::new(256, &weights, None);
            let mut totals = [0u64; 2];
            for (i, &w) in works.iter().enumerate() {
                let lane = i % 2;
                q.push(lane, 0, w, (lane, w)).unwrap();
                totals[lane] += w;
            }
            q.close();
            // While both lanes are backlogged, the served-work ratio
            // tracks the weight ratio within one grant + one max job.
            let quantum = 16u64; // running max possible work
            let bound = |weight: u64| weight * quantum + 16;
            let mut served = [0u64; 2];
            while let Some((lane, w)) = q.pop() {
                served[lane] += w;
                let done = served[0] == totals[0] || served[1] == totals[1];
                if !done {
                    // served0 / served1 ≈ 1 / 3 within the bound:
                    // |3·served0 − served1| ≤ 3·bound(1) + bound(3).
                    let gap = (3 * served[0]).abs_diff(served[1]);
                    prop_assert!(
                        gap <= 3 * bound(1) + bound(3),
                        "weight share violated: served {served:?}, gap {gap}"
                    );
                }
            }
            prop_assert_eq!(served, totals);
        }
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_on_close() {
        use std::sync::Arc;
        let q: Arc<JobQueue<u32>> = Arc::new(JobQueue::single_lane(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        q.push(0, 0, 1, 7).unwrap();
        q.push(0, 0, 1, 8).unwrap();
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, vec![7, 8]);
    }
}
