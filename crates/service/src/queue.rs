//! A bounded, blocking priority queue over `Mutex` + `Condvar`.
//!
//! `std::sync::mpsc` has no priorities and no bounded non-blocking
//! push, so the service's request queue is built directly on the
//! primitives: a [`std::collections::BinaryHeap`] ordered by
//! `(priority desc, submission order asc)` behind a mutex, a condvar
//! for the consumer side, and a hard capacity on the producer side —
//! a full queue *refuses* instead of blocking, because admission
//! control wants backpressure to be a typed, observable event
//! (`QuotaError::QueueFull`), never a silently stalled caller.
//!
//! Closing the queue ([`JobQueue::close`]) stops producers immediately
//! but lets consumers drain every item already queued before
//! [`JobQueue::pop`] starts returning `None` — the graceful-shutdown
//! half of the service contract.
//!
//! # Poison recovery
//!
//! Every lock acquisition recovers from poisoning instead of
//! propagating it. The critical sections below only call `BinaryHeap`
//! operations and field assignments, none of which leave the structure
//! torn if a caller's panic unwinds *outside* the section — and the
//! fault-isolation contract of the service (workers catch backend
//! panics but must keep serving) means a single panicking request must
//! never wedge the queue for every other tenant.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Why a push was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The queue is at capacity.
    Full,
    /// The queue was closed ([`JobQueue::close`]).
    Closed,
}

/// One queued item, ordered by `(priority desc, seq asc)` — higher
/// priorities first, FIFO within a priority level.
struct Entry<T> {
    priority: u8,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: higher priority wins; within a
        // priority, the *lower* sequence number (earlier submission)
        // must surface first, hence the reversed comparison.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct Inner<T> {
    heap: BinaryHeap<Entry<T>>,
    closed: bool,
    next_seq: u64,
}

/// The bounded blocking priority queue. See the module docs.
pub(crate) struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// An open queue holding at most `capacity` items.
    pub(crate) fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                closed: false,
                next_seq: 0,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The queue's capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Locks the queue state, recovering from poisoning (see the module
    /// docs: the critical sections never leave the heap torn).
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current number of queued items.
    pub(crate) fn depth(&self) -> usize {
        self.lock().heap.len()
    }

    /// Enqueues `item` at `priority`. Never blocks: a full or closed
    /// queue returns the item to the caller with the typed reason.
    pub(crate) fn push(&self, priority: u8, item: T) -> Result<(), (T, PushError)> {
        let mut inner = self.lock();
        if inner.closed {
            return Err((item, PushError::Closed));
        }
        if inner.heap.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.heap.push(Entry {
            priority,
            seq,
            item,
        });
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the highest-priority item, blocking while the queue is
    /// empty and open. Returns `None` only once the queue is closed
    /// **and** fully drained.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(entry) = inner.heap.pop() {
                return Some(entry.item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeues without blocking: `None` when the queue is currently
    /// empty (used by the shutdown path to drain leftovers when the
    /// service runs without workers).
    pub(crate) fn try_pop(&self) -> Option<T> {
        self.lock().heap.pop().map(|e| e.item)
    }

    /// Removes and returns every queued item matching `pred`, preserving
    /// the `(priority desc, seq asc)` order among the survivors (their
    /// original sequence numbers are kept). Used to purge jobs that are
    /// already cancelled or past their deadline, so dead work can never
    /// hold capacity against live submissions.
    pub(crate) fn drain_matching(&self, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut inner = self.lock();
        let entries = std::mem::take(&mut inner.heap).into_vec();
        let mut removed = Vec::new();
        for entry in entries {
            if pred(&entry.item) {
                removed.push(entry.item);
            } else {
                inner.heap.push(entry);
            }
        }
        removed
    }

    /// Closes the queue: pushes start failing with
    /// [`PushError::Closed`]; pops drain the remaining items and then
    /// return `None`. Idempotent.
    pub(crate) fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn orders_by_priority_then_fifo() {
        let q: JobQueue<&'static str> = JobQueue::new(8);
        q.push(1, "low-a").unwrap();
        q.push(5, "high-a").unwrap();
        q.push(1, "low-b").unwrap();
        q.push(5, "high-b").unwrap();
        q.close();
        assert_eq!(q.pop(), Some("high-a"));
        assert_eq!(q.pop(), Some("high-b"));
        assert_eq!(q.pop(), Some("low-a"));
        assert_eq!(q.pop(), Some("low-b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_and_closed_pushes_return_the_item() {
        let q: JobQueue<u32> = JobQueue::new(2);
        q.push(0, 1).unwrap();
        q.push(0, 2).unwrap();
        let (item, reason) = q.push(0, 3).unwrap_err();
        assert_eq!((item, reason), (3, PushError::Full));
        q.close();
        let (item, reason) = q.push(0, 4).unwrap_err();
        assert_eq!((item, reason), (4, PushError::Closed));
        // The queued items remain drainable after close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drain_matching_removes_matches_and_preserves_order() {
        let q: JobQueue<u32> = JobQueue::new(8);
        q.push(1, 10).unwrap();
        q.push(5, 20).unwrap();
        q.push(1, 11).unwrap();
        q.push(5, 21).unwrap();
        let removed = q.drain_matching(|&v| v % 10 == 1);
        assert_eq!(removed.len(), 2);
        assert!(removed.contains(&11) && removed.contains(&21));
        // Survivors keep (priority desc, seq asc) order.
        q.close();
        assert_eq!(q.pop(), Some(20));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn a_panic_inside_the_lock_does_not_wedge_the_queue() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        // The marker keeps this intentional panic out of the test logs
        // (CI asserts the service suites emit zero unexpected panics).
        crate::faults::silence_injected_panics();
        let q: JobQueue<u32> = JobQueue::new(4);
        q.push(0, 1).unwrap();
        // `drain_matching` runs the caller predicate while holding the
        // lock; a panicking predicate poisons the mutex. Every later
        // acquisition must recover instead of propagating.
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            q.drain_matching(|_| {
                panic!(
                    "{} predicate exploded",
                    crate::faults::INJECTED_PANIC_MARKER
                )
            });
        }));
        assert!(unwound.is_err());
        assert!(q.inner.is_poisoned());
        q.push(0, 2).unwrap();
        assert!(q.depth() >= 1);
        q.close();
        let mut drained = Vec::new();
        while let Some(v) = q.pop() {
            drained.push(v);
        }
        assert!(drained.contains(&2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Model check: the queue agrees with a naive reference on an
        /// arbitrary interleaving of pushes, pops and cancellation
        /// purges, and never exceeds capacity.
        #[test]
        fn queue_matches_a_reference_model(ops in proptest::collection::vec(0u32..=40, 1..60)) {
            const CAP: usize = 8;
            let q: JobQueue<u64> = JobQueue::new(CAP);
            // Reference: (priority, seq, value), popped by max priority
            // then min seq.
            let mut model: Vec<(u8, u64, u64)> = Vec::new();
            let mut next_val = 0u64;
            let mut next_seq = 0u64;
            for op in ops {
                match op {
                    // Push at priority op % 4.
                    0..=29 => {
                        let pri = (op % 4) as u8;
                        let val = next_val;
                        next_val += 1;
                        let res = q.push(pri, val);
                        if model.len() >= CAP {
                            prop_assert!(matches!(res, Err((_, PushError::Full))));
                        } else {
                            prop_assert!(res.is_ok());
                            model.push((pri, next_seq, val));
                            next_seq += 1;
                        }
                    }
                    // Pop.
                    30..=35 => {
                        let got = q.try_pop();
                        let want = model
                            .iter()
                            .enumerate()
                            .max_by_key(|(_, &(p, s, _))| (p, std::cmp::Reverse(s)))
                            .map(|(i, _)| i);
                        match want {
                            Some(i) => {
                                let (_, _, val) = model.remove(i);
                                prop_assert_eq!(got, Some(val));
                            }
                            None => prop_assert_eq!(got, None),
                        }
                    }
                    // Purge even values (stand-in for cancelled jobs).
                    _ => {
                        let removed = q.drain_matching(|v| v % 2 == 0);
                        let expect: Vec<u64> = model
                            .iter()
                            .filter(|&&(_, _, v)| v % 2 == 0)
                            .map(|&(_, _, v)| v)
                            .collect();
                        model.retain(|&(_, _, v)| v % 2 != 0);
                        prop_assert_eq!(removed.len(), expect.len());
                        for v in expect {
                            prop_assert!(removed.contains(&v));
                        }
                    }
                }
                prop_assert!(q.depth() <= CAP);
                prop_assert_eq!(q.depth(), model.len());
            }
            // Drain: the queue empties in exact model order.
            q.close();
            while let Some(got) = q.pop() {
                let i = model
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &(p, s, _))| (p, std::cmp::Reverse(s)))
                    .map(|(i, _)| i)
                    .expect("queue had more items than the model");
                let (_, _, val) = model.remove(i);
                prop_assert_eq!(got, val);
            }
            prop_assert!(model.is_empty());
        }
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_on_close() {
        use std::sync::Arc;
        let q: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        q.push(0, 7).unwrap();
        q.push(0, 8).unwrap();
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, vec![7, 8]);
    }
}
