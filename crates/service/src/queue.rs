//! A bounded, blocking priority queue over `Mutex` + `Condvar`.
//!
//! `std::sync::mpsc` has no priorities and no bounded non-blocking
//! push, so the service's request queue is built directly on the
//! primitives: a [`std::collections::BinaryHeap`] ordered by
//! `(priority desc, submission order asc)` behind a mutex, a condvar
//! for the consumer side, and a hard capacity on the producer side —
//! a full queue *refuses* instead of blocking, because admission
//! control wants backpressure to be a typed, observable event
//! (`QuotaError::QueueFull`), never a silently stalled caller.
//!
//! Closing the queue ([`JobQueue::close`]) stops producers immediately
//! but lets consumers drain every item already queued before
//! [`JobQueue::pop`] starts returning `None` — the graceful-shutdown
//! half of the service contract.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

/// Why a push was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The queue is at capacity.
    Full,
    /// The queue was closed ([`JobQueue::close`]).
    Closed,
}

/// One queued item, ordered by `(priority desc, seq asc)` — higher
/// priorities first, FIFO within a priority level.
struct Entry<T> {
    priority: u8,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: higher priority wins; within a
        // priority, the *lower* sequence number (earlier submission)
        // must surface first, hence the reversed comparison.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct Inner<T> {
    heap: BinaryHeap<Entry<T>>,
    closed: bool,
    next_seq: u64,
}

/// The bounded blocking priority queue. See the module docs.
pub(crate) struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// An open queue holding at most `capacity` items.
    pub(crate) fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                closed: false,
                next_seq: 0,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The queue's capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued items.
    pub(crate) fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").heap.len()
    }

    /// Enqueues `item` at `priority`. Never blocks: a full or closed
    /// queue returns the item to the caller with the typed reason.
    pub(crate) fn push(&self, priority: u8, item: T) -> Result<(), (T, PushError)> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Err((item, PushError::Closed));
        }
        if inner.heap.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.heap.push(Entry {
            priority,
            seq,
            item,
        });
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the highest-priority item, blocking while the queue is
    /// empty and open. Returns `None` only once the queue is closed
    /// **and** fully drained.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(entry) = inner.heap.pop() {
                return Some(entry.item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Dequeues without blocking: `None` when the queue is currently
    /// empty (used by the shutdown path to drain leftovers when the
    /// service runs without workers).
    pub(crate) fn try_pop(&self) -> Option<T> {
        self.inner
            .lock()
            .expect("queue lock poisoned")
            .heap
            .pop()
            .map(|e| e.item)
    }

    /// Closes the queue: pushes start failing with
    /// [`PushError::Closed`]; pops drain the remaining items and then
    /// return `None`. Idempotent.
    pub(crate) fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_priority_then_fifo() {
        let q: JobQueue<&'static str> = JobQueue::new(8);
        q.push(1, "low-a").unwrap();
        q.push(5, "high-a").unwrap();
        q.push(1, "low-b").unwrap();
        q.push(5, "high-b").unwrap();
        q.close();
        assert_eq!(q.pop(), Some("high-a"));
        assert_eq!(q.pop(), Some("high-b"));
        assert_eq!(q.pop(), Some("low-a"));
        assert_eq!(q.pop(), Some("low-b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_and_closed_pushes_return_the_item() {
        let q: JobQueue<u32> = JobQueue::new(2);
        q.push(0, 1).unwrap();
        q.push(0, 2).unwrap();
        let (item, reason) = q.push(0, 3).unwrap_err();
        assert_eq!((item, reason), (3, PushError::Full));
        q.close();
        let (item, reason) = q.push(0, 4).unwrap_err();
        assert_eq!((item, reason), (4, PushError::Closed));
        // The queued items remain drainable after close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_on_close() {
        use std::sync::Arc;
        let q: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        q.push(0, 7).unwrap();
        q.push(0, 8).unwrap();
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, vec![7, 8]);
    }
}
