//! The service runtime: admission, the worker pool, tickets and
//! shutdown.
//!
//! # Life of a request
//!
//! 1. [`ServiceHandle::submit`] runs the admission pipeline documented
//!    in `sws_model::policy` **on the caller's thread**: tenant lookup,
//!    overload shedding (below), guarantee-floor adjustment, backend
//!    planning ([`Portfolio::plan`]) and the cost/quota/queue gates.
//!    Refusals return immediately — no scheduling work was spent on
//!    them.
//! 2. Admitted requests enter the tenant's lane of the bounded
//!    deficit-round-robin queue (see `queue.rs`) with a one-shot
//!    completion channel; the caller holds the [`Ticket`]. The lane is
//!    charged the request's planned `CostEstimate` work units when a
//!    worker picks it up, so tenants share *work*, weighted by
//!    [`TenantPolicy::weight`](sws_model::policy::TenantPolicy::weight),
//!    not request counts — a flooding tenant only ever delays its own
//!    backlog. Priorities order a tenant's own lane; the aging bound
//!    ([`ServiceBuilder::age_limit`]) caps how long any queued request
//!    can be passed over regardless of weights.
//! 3. **Overload shedding.** A tenant with a configured
//!    [`ShedPolicy`](sws_model::policy::ShedPolicy) is watched on two
//!    pressure signals at every submit: its lane depth and its
//!    *recent* (windowed) p99 latency. Above the high watermarks the
//!    tenant's shed latch closes and admission walks the policy
//!    ladder — degrade toward `guarantee_floor` when the floor admits
//!    `PaperRatio`, refuse with the typed
//!    [`QuotaError::Overloaded`](sws_model::policy::QuotaError) reason
//!    otherwise — until pressure falls back under the low watermarks
//!    (hysteresis; the windowed p99 forgets, so recovery needs no
//!    manual reset).
//! 4. A worker thread dequeues the job, re-resolves the backend through
//!    the shared [`DispatchWorker`] (the same per-worker
//!    selection-plus-workspace routine the batch path uses — selection
//!    is deterministic, so the dispatched backend is exactly the
//!    planned one) and sends the terminal outcome through the channel.
//!    Cancelled and deadline-expired jobs are resolved without
//!    dispatching; a job cancelled *mid-solve* trips the cooperative
//!    [`CancelProbe`] at the next round boundary.
//! 5. [`Ticket::wait`] yields the outcome. Every admitted request gets
//!    **exactly one** terminal outcome, including through shutdown.
//!
//! # Fault tolerance
//!
//! See `docs/RELIABILITY.md` for the full failure-mode table. In short:
//!
//! * **Panic isolation.** Each dispatch runs under `catch_unwind`; a
//!   panicking backend costs that request (it resolves to
//!   [`ServiceError::SolverPanicked`] once its retry budget is spent),
//!   never the worker. The worker quarantines its workspace and keeps
//!   serving; the queue recovers from lock poisoning.
//! * **Cooperative cancellation.** Workers arm a [`CancelProbe`] with
//!   the ticket's cancel flag and deadline before dispatching, so
//!   kernel rounds, enumeration nodes and PTAS dual tests observe
//!   cancellation mid-solve within a bounded stride.
//! * **Retry with backoff.** A tenant's
//!   [`RetryPolicy`](sws_model::policy::RetryPolicy) re-queues
//!   transiently-failed attempts (backend panics; queue-full submits
//!   retry on the caller's thread) with capped exponential backoff,
//!   optionally degrading the guarantee once the budget is exhausted.
//!
//! # Shutdown
//!
//! [`SchedulingService::shutdown`] stops new submissions, lets the
//! workers drain everything already queued, joins them and returns the
//! final stats. Dropping the service without calling it performs the
//! same graceful drain.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sws_core::dispatch::DispatchWorker;
use sws_core::portfolio::{Portfolio, SolvePlan};
use sws_model::cancel::{CancelProbe, InterruptReason};
use sws_model::error::ModelError;
use sws_model::policy::{AdmissionVerdict, OverflowPolicy, QuotaError, TenantPolicy};
use sws_model::solve::{BackendId, Guarantee, Solution};

use crate::queue::{JobQueue, PushError};
use crate::request::ServiceRequest;
use crate::stats::{Counters, ScopeStats, ServiceStats};

/// How a request failed to produce a solution.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Refused at admission with a typed quota/backpressure reason.
    Refused(QuotaError),
    /// The solve itself returned a typed model error — at admission
    /// (`NoQualifiedBackend` with no degradation available) or at
    /// dispatch (e.g. `BudgetNotMet`).
    Solve(ModelError),
    /// The deadline passed before a worker picked the request up, or
    /// mid-solve via the cooperative deadline probe.
    DeadlineExpired,
    /// The caller cancelled the request — before dispatch, or mid-solve
    /// via the cooperative cancellation probe.
    Cancelled,
    /// The backend panicked while solving the request, on every attempt
    /// the tenant's [`sws_model::policy::RetryPolicy`] allowed. The
    /// panic was caught at the worker boundary — the worker survives —
    /// and the payload message is preserved here.
    SolverPanicked {
        /// The backend that panicked (the planned dispatch target of
        /// the final attempt).
        backend: BackendId,
        /// The panic payload, when it carried a message.
        message: String,
    },
    /// The service is shutting down (submission refused, or — only for
    /// a service running without workers — an undrained job).
    ShuttingDown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Refused(reason) => write!(f, "refused at admission: {reason}"),
            ServiceError::Solve(err) => write!(f, "solve failed: {err}"),
            ServiceError::DeadlineExpired => write!(f, "deadline expired"),
            ServiceError::Cancelled => write!(f, "cancelled by the caller"),
            ServiceError::SolverPanicked { backend, message } => {
                write!(f, "backend {backend:?} panicked while solving: {message}")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// One admitted request's terminal outcome.
pub type ServiceOutcome = Result<Solution, ServiceError>;

/// A queued job: the owned request payload plus its completion channel.
struct Job {
    tenant_idx: usize,
    request: ServiceRequest,
    /// The guarantee the request was admitted at (floor-adjusted,
    /// possibly degraded).
    effective: Guarantee,
    /// The admission-time backend plan: workers dispatch straight to it
    /// (selection is deterministic, so this is exactly what a fresh
    /// selection would resolve) instead of paying the bid pass twice.
    plan: SolvePlan,
    /// The plan's cost in integer work units (≥ 1) — what the tenant's
    /// queue lane is charged when the job is served, and what a retry
    /// re-charges on its way back in.
    work: u64,
    deadline: Option<Instant>,
    cancel: Arc<AtomicBool>,
    submitted: Instant,
    /// Dispatch attempts already spent on this job (0 on first entry;
    /// bumped each time a panicked attempt is re-queued under the
    /// tenant's retry policy).
    attempt: u32,
    tx: mpsc::Sender<ServiceOutcome>,
}

/// One registered tenant: id, policy, counters, shed latch.
pub(crate) struct TenantEntry {
    pub(crate) id: String,
    pub(crate) policy: TenantPolicy,
    pub(crate) counters: Counters,
    /// The hysteretic overload latch: set when the tenant's pressure
    /// signals cross [`ShedPolicy`](sws_model::policy::ShedPolicy)
    /// high watermarks, cleared only once both are back under the low
    /// ones. Read/written on the submit path only.
    shedding: AtomicBool,
}

/// The outcome of the policy half of admission (steps 2–5 of the
/// documented pipeline: floor, planning, work gate, in-flight quota) —
/// everything except the queue push, shared by [`ServiceHandle::submit`]
/// and [`ServiceHandle::probe`].
enum AdmissionDecision {
    /// Admit at `effective` (degraded from `degraded_from` when set),
    /// dispatching per `plan`.
    Admit {
        effective: Guarantee,
        degraded_from: Option<Guarantee>,
        plan: SolvePlan,
        /// The degradation was forced by the overload shed ladder (not
        /// by planning failure or the work gate) — counted under the
        /// `shed` stat on top of `degraded`.
        shed_degraded: bool,
    },
    /// Refuse with a typed quota reason.
    Refuse(QuotaError),
    /// No qualifying backend (and no permitted degradation).
    NoBackend(ModelError),
}

/// State shared between the handle(s) and the workers (and, read-only,
/// the replanning sessions of `session.rs`).
pub(crate) struct Shared {
    portfolio: Portfolio,
    /// The deficit-round-robin queue, one lane per `tenants` entry
    /// (lane index == tenant index). Jobs are boxed so the per-lane
    /// heaps sift pointers, not ~200-byte payloads.
    queue: JobQueue<Box<Job>>,
    tenants: Vec<TenantEntry>,
    tenant_index: HashMap<String, usize>,
    /// Index of the aggregate entry unknown tenants map to when a
    /// default policy is configured.
    default_tenant: Option<usize>,
    pub(crate) global: Counters,
    pub(crate) accepting: AtomicBool,
}

impl Shared {
    fn stats(&self) -> ServiceStats {
        let gauges = self.queue.gauges();
        let mut tenants: Vec<ScopeStats> = self
            .tenants
            .iter()
            .map(|t| t.counters.snapshot(t.id.clone()))
            .collect();
        // Lane index == tenant index, so the queue gauges zip straight
        // onto the tenant scopes.
        for (snap, gauge) in tenants.iter_mut().zip(gauges.iter()) {
            snap.queued = gauge.depth;
            snap.deficit = gauge.deficit;
            snap.head_wait = gauge.head_wait;
        }
        let mut global = self.global.snapshot("global".into());
        // The in-flight gauge lives on the tenant counters (the quota
        // reservation must be a single per-tenant atomic step); the
        // global gauge is their sum at snapshot time.
        global.in_flight = tenants.iter().map(|t| t.in_flight).sum();
        global.queued = gauges.iter().map(|g| g.depth).sum();
        global.deficit = gauges.iter().map(|g| g.deficit).sum();
        global.head_wait = gauges.iter().filter_map(|g| g.head_wait).max();
        ServiceStats {
            global,
            tenants,
            queue_depth: self.queue.depth(),
            queue_capacity: self.queue.capacity(),
        }
    }

    /// Resolves the tenant entry index for a request's tenant id.
    pub(crate) fn tenant_idx(&self, tenant: &str) -> Option<usize> {
        self.tenant_index
            .get(tenant)
            .copied()
            .or(self.default_tenant)
    }

    /// The tenant entry behind a validated index. Every index originates
    /// in [`Shared::tenant_idx`] — the `tenant_index` map values and
    /// `default_tenant` both point into `tenants` by construction — and
    /// travels unmodified inside a [`Job`], so the lookup cannot miss.
    /// Centralising the access keeps the justification in one place.
    pub(crate) fn tenant(&self, idx: usize) -> &TenantEntry {
        // sws-lint: allow(panic-policy, reason = "indices are minted only by tenant_idx() from map values and default_tenant, both in-bounds by construction, and are never arithmetic-derived")
        &self.tenants[idx]
    }

    /// Evaluates the tenant's overload pressure against its
    /// [`ShedPolicy`](sws_model::policy::ShedPolicy), advancing the
    /// hysteretic latch when `update` is set (the submit path) and
    /// only peeking when it is not (the side-effect-free `probe`).
    /// Returns the pressure readings `(lane depth, recent p99)` while
    /// the tenant should shed, `None` otherwise.
    fn shed_pressure(&self, tenant_idx: usize, update: bool) -> Option<(usize, Option<Duration>)> {
        let entry = self.tenant(tenant_idx);
        let shed = &entry.policy.shed;
        if !shed.is_enabled() {
            return None;
        }
        let queued = self.queue.lane_depth(tenant_idx);
        let recent_p99 = entry.counters.recent.quantile(0.99);
        let latched = entry.shedding.load(Ordering::Relaxed);
        let next = if latched {
            // Leaving shedding needs *both* signals back under their
            // low watermarks — the hysteresis half of the latch.
            !shed.under_low(queued, recent_p99)
        } else {
            shed.over_high(queued, recent_p99)
        };
        if update && next != latched {
            entry.shedding.store(next, Ordering::Relaxed);
        }
        next.then_some((queued, recent_p99))
    }

    /// The policy half of admission — see [`AdmissionDecision`].
    /// `shed` carries the tenant's pressure readings when its overload
    /// latch is closed (see [`Shared::shed_pressure`]).
    fn decide(
        &self,
        tenant_idx: usize,
        request: &ServiceRequest,
        shed: Option<(usize, Option<Duration>)>,
    ) -> AdmissionDecision {
        let entry = self.tenant(tenant_idx);
        let policy = entry.policy;
        let mut effective = policy.effective_guarantee(request.guarantee);
        let mut degraded_from = None;
        let can_degrade = policy.overflow == OverflowPolicy::Degrade
            && Guarantee::PaperRatio.satisfies(&policy.guarantee_floor);
        let stronger_than_paper =
            |g: Guarantee| matches!(g, Guarantee::Exact | Guarantee::EpsilonOptimal(_));
        let plan_at = |g: Guarantee| {
            self.portfolio
                .plan(&request.instance.as_request(request.objective, g))
        };

        // Overload shed ladder, before any planning work is spent:
        // degrade toward the guarantee floor when the floor admits the
        // paper-ratio tier (whatever the overflow policy — this is an
        // overload response, not an overflow one); otherwise refuse
        // with the typed overload reason.
        let mut shed_degraded = false;
        if let Some((queued, recent_p99)) = shed {
            if stronger_than_paper(effective)
                && Guarantee::PaperRatio.satisfies(&policy.guarantee_floor)
            {
                degraded_from = Some(effective);
                effective = Guarantee::PaperRatio;
                shed_degraded = true;
            } else {
                return AdmissionDecision::Refuse(QuotaError::Overloaded {
                    tenant: entry.id.clone(),
                    queued,
                    recent_p99,
                });
            }
        }

        // Backend planning, degrading on `NoQualifiedBackend` when the
        // policy allows it.
        let mut plan = match plan_at(effective) {
            Ok(plan) => plan,
            Err(err) => {
                if can_degrade && stronger_than_paper(effective) {
                    match plan_at(Guarantee::PaperRatio) {
                        Ok(plan) => {
                            degraded_from = Some(effective);
                            effective = Guarantee::PaperRatio;
                            plan
                        }
                        Err(_) => return AdmissionDecision::NoBackend(err),
                    }
                } else {
                    return AdmissionDecision::NoBackend(err);
                }
            }
        };

        // Work gate, degrading once when the policy allows it.
        if plan.cost.work > policy.max_estimated_work {
            let mut resolved = false;
            if can_degrade && degraded_from.is_none() && stronger_than_paper(effective) {
                if let Ok(cheaper) = plan_at(Guarantee::PaperRatio) {
                    if cheaper.cost.work <= policy.max_estimated_work {
                        degraded_from = Some(effective);
                        effective = Guarantee::PaperRatio;
                        plan = cheaper;
                        resolved = true;
                    }
                }
            }
            if !resolved {
                return AdmissionDecision::Refuse(QuotaError::WorkExceeded {
                    estimated: plan.cost.work,
                    limit: policy.max_estimated_work,
                });
            }
        }

        // In-flight quota (`OverflowPolicy::Queue` absorbs bursts in
        // the bounded queue instead). This read is the advisory view
        // `probe` reports; `submit` re-enforces the quota atomically in
        // [`Shared::reserve_in_flight`], where concurrent submits
        // cannot race past it.
        let in_flight = entry.counters.in_flight.load(Ordering::Relaxed);
        if in_flight >= policy.max_in_flight && policy.overflow != OverflowPolicy::Queue {
            return AdmissionDecision::Refuse(QuotaError::InFlightExceeded {
                tenant: entry.id.clone(),
                in_flight,
                limit: policy.max_in_flight,
            });
        }

        AdmissionDecision::Admit {
            effective,
            degraded_from,
            plan,
            shed_degraded,
        }
    }

    /// Atomically reserves one in-flight slot for the tenant: the quota
    /// comparison and the increment are a single compare-and-swap, so
    /// concurrent submits on the same tenant cannot all slip past a
    /// nearly-full quota. `Queue`-overflow tenants always reserve (the
    /// bounded queue is their only limit).
    fn reserve_in_flight(&self, tenant_idx: usize) -> Result<(), QuotaError> {
        let entry = self.tenant(tenant_idx);
        let counter = &entry.counters.in_flight;
        let mut current = counter.load(Ordering::Relaxed);
        loop {
            if current >= entry.policy.max_in_flight
                && entry.policy.overflow != OverflowPolicy::Queue
            {
                return Err(QuotaError::InFlightExceeded {
                    tenant: entry.id.clone(),
                    in_flight: current,
                    limit: entry.policy.max_in_flight,
                });
            }
            match counter.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => current = actual,
            }
        }
    }

    /// Counts a refusal against a tenant (when known) and globally.
    pub(crate) fn count_refusal(&self, tenant_idx: Option<usize>) {
        if let Some(idx) = tenant_idx {
            Counters::bump(&self.tenant(idx).counters.refused);
        }
        Counters::bump(&self.global.refused);
    }

    /// Eagerly purges queued jobs that can no longer run — cancelled,
    /// or past their deadline — resolving each to its terminal outcome
    /// immediately, so dead work never holds queue capacity against a
    /// live submission. Returns the number purged.
    fn purge_dead_jobs(&self) -> usize {
        let now = Instant::now();
        let dead = self.queue.drain_matching(|job| {
            job.cancel.load(Ordering::Relaxed) || job.deadline.is_some_and(|d| now >= d)
        });
        let purged = dead.len();
        for job in dead {
            let counters = &self.tenant(job.tenant_idx).counters;
            let outcome = if job.cancel.load(Ordering::Relaxed) {
                Counters::bump(&counters.cancelled);
                Counters::bump(&self.global.cancelled);
                Err(ServiceError::Cancelled)
            } else {
                Counters::bump(&counters.expired);
                Counters::bump(&self.global.expired);
                Err(ServiceError::DeadlineExpired)
            };
            counters.in_flight.fetch_sub(1, Ordering::Relaxed);
            let _ = job.tx.send(outcome);
        }
        purged
    }
}

/// The caller's side of one admitted request: the admission verdict and
/// the completion receiver.
pub struct Ticket {
    verdict: AdmissionVerdict,
    effective: Guarantee,
    cancel: Arc<AtomicBool>,
    rx: mpsc::Receiver<ServiceOutcome>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("verdict", &self.verdict)
            .field("effective", &self.effective)
            .finish_non_exhaustive()
    }
}

impl Ticket {
    /// The admission verdict (admitted or degraded; refusals never
    /// produce a ticket).
    pub fn verdict(&self) -> &AdmissionVerdict {
        &self.verdict
    }

    /// The guarantee the request was admitted at — the level the
    /// delivered solution satisfies, and the level to use when
    /// reproducing the result with a direct `Portfolio::solve` call.
    pub fn effective_guarantee(&self) -> Guarantee {
        self.effective
    }

    /// Requests cancellation. Observed at two points: a job still
    /// queued resolves to [`ServiceError::Cancelled`] without
    /// dispatching, and a job already running trips the worker's
    /// cooperative [`CancelProbe`] at the next round boundary —
    /// kernel rounds, branch-and-bound/enumeration nodes and PTAS
    /// dual tests all poll it on a bounded stride. Only a solve in its
    /// final stretch (or on a backend with no round structure, e.g. the
    /// `O(n log n)` heuristics) still completes normally.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Blocks until the terminal outcome arrives. Every admitted
    /// request gets exactly one.
    pub fn wait(self) -> ServiceOutcome {
        self.rx.recv().unwrap_or(Err(ServiceError::ShuttingDown))
    }

    /// Non-blocking poll: `Ok(outcome)` when resolved, `Err(self)` (the
    /// ticket back) when still pending.
    pub fn try_wait(self) -> Result<ServiceOutcome, Ticket> {
        match self.rx.try_recv() {
            Ok(outcome) => Ok(outcome),
            Err(mpsc::TryRecvError::Empty) => Err(self),
            Err(mpsc::TryRecvError::Disconnected) => Ok(Err(ServiceError::ShuttingDown)),
        }
    }
}

/// A cloneable submission handle onto a running service.
#[derive(Clone)]
pub struct ServiceHandle {
    pub(crate) shared: Arc<Shared>,
}

impl ServiceHandle {
    /// Submits a request through the admission pipeline. `Ok` returns a
    /// [`Ticket`] whose verdict is `Admitted` or `Degraded`; `Err` *is*
    /// the request's terminal outcome (refusal, no qualifying backend,
    /// or shutdown) — no ticket exists for it.
    pub fn submit(&self, request: ServiceRequest) -> Result<Ticket, ServiceError> {
        let shared = &*self.shared;
        if !shared.accepting.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }

        let Some(tenant_idx) = shared.tenant_idx(&request.tenant) else {
            shared.count_refusal(None);
            return Err(ServiceError::Refused(QuotaError::UnknownTenant {
                tenant: request.tenant.clone(),
            }));
        };
        let shed = shared.shed_pressure(tenant_idx, true);
        let decision = shared.decide(tenant_idx, &request, shed);
        let (effective, degraded_from, plan, shed_degraded) = match decision {
            AdmissionDecision::Admit {
                effective,
                degraded_from,
                plan,
                shed_degraded,
            } => (effective, degraded_from, plan, shed_degraded),
            AdmissionDecision::Refuse(reason) => {
                if matches!(reason, QuotaError::Overloaded { .. }) {
                    Counters::bump(&shared.tenant(tenant_idx).counters.shed);
                    Counters::bump(&shared.global.shed);
                }
                shared.count_refusal(Some(tenant_idx));
                return Err(ServiceError::Refused(reason));
            }
            AdmissionDecision::NoBackend(err) => {
                shared.count_refusal(Some(tenant_idx));
                return Err(ServiceError::Solve(err));
            }
        };

        // Enqueue with the completion channel.
        let entry = shared.tenant(tenant_idx);
        let (tx, rx) = mpsc::channel();
        let cancel = Arc::new(AtomicBool::new(false));
        let submitted = Instant::now();
        let priority = request.priority;
        let work = work_units(plan.cost.work);
        let job = Job {
            tenant_idx,
            deadline: request.deadline.map(|d| submitted + d),
            effective,
            plan,
            work,
            cancel: Arc::clone(&cancel),
            submitted,
            attempt: 0,
            tx,
            request,
        };
        if let Err(reason) = shared.reserve_in_flight(tenant_idx) {
            shared.count_refusal(Some(tenant_idx));
            return Err(ServiceError::Refused(reason));
        }
        // Push, treating backpressure as transient: a full queue first
        // gets its dead jobs (cancelled / past-deadline) purged, then
        // the tenant's retry policy spends its backoff budget before
        // the submission is refused with `QueueFull`.
        let retry = entry.policy.retry;
        let mut job = Box::new(job);
        let mut purged_free_retry = true;
        let mut full_attempts = 0u32;
        loop {
            match shared.queue.push(tenant_idx, priority, work, job) {
                Ok(()) => break,
                // `NoSuchLane` cannot happen (one lane per tenant entry
                // by construction); folding it into the shutdown arm
                // keeps the match total without a panic path.
                Err((_job, PushError::Closed | PushError::NoSuchLane)) => {
                    entry.counters.in_flight.fetch_sub(1, Ordering::Relaxed);
                    return Err(ServiceError::ShuttingDown);
                }
                Err((returned, PushError::Full)) => {
                    job = returned;
                    // The purge retry is free exactly once: if it freed
                    // capacity the push deserves another go before any
                    // of the retry budget is spent.
                    if purged_free_retry {
                        purged_free_retry = false;
                        if shared.purge_dead_jobs() > 0 {
                            continue;
                        }
                    }
                    full_attempts += 1;
                    if !retry.should_retry(full_attempts) {
                        entry.counters.in_flight.fetch_sub(1, Ordering::Relaxed);
                        shared.count_refusal(Some(tenant_idx));
                        return Err(ServiceError::Refused(QuotaError::QueueFull {
                            capacity: shared.queue.capacity(),
                        }));
                    }
                    Counters::bump(&entry.counters.retried);
                    Counters::bump(&shared.global.retried);
                    std::thread::sleep(retry.backoff_for(full_attempts));
                    shared.purge_dead_jobs();
                }
            }
        }
        Counters::bump(&entry.counters.admitted);
        Counters::bump(&shared.global.admitted);
        let verdict = match degraded_from {
            Some(from) => {
                Counters::bump(&entry.counters.degraded);
                Counters::bump(&shared.global.degraded);
                if shed_degraded {
                    Counters::bump(&entry.counters.shed);
                    Counters::bump(&shared.global.shed);
                }
                AdmissionVerdict::Degraded {
                    from,
                    to: effective,
                    backend: plan.backend,
                    cost: plan.cost,
                }
            }
            None => AdmissionVerdict::Admitted {
                backend: plan.backend,
                cost: plan.cost,
            },
        };
        Ok(Ticket {
            verdict,
            effective,
            cancel,
            rx,
        })
    }

    /// Runs the admission pipeline **without** enqueuing: the verdict a
    /// [`ServiceHandle::submit`] call would reach right now (modulo the
    /// queue-capacity gate, which only an actual push can decide).
    /// Quota and backend refusals come back as
    /// [`AdmissionVerdict::Refused`] / [`ServiceError::Solve`]; nothing
    /// is counted in the stats.
    pub fn probe(&self, request: &ServiceRequest) -> Result<AdmissionVerdict, ServiceError> {
        let shared = &*self.shared;
        let Some(tenant_idx) = shared.tenant_idx(&request.tenant) else {
            return Ok(AdmissionVerdict::Refused {
                reason: QuotaError::UnknownTenant {
                    tenant: request.tenant.clone(),
                },
            });
        };
        let shed = shared.shed_pressure(tenant_idx, false);
        match shared.decide(tenant_idx, request, shed) {
            AdmissionDecision::Admit {
                effective,
                degraded_from,
                plan,
                shed_degraded: _,
            } => Ok(match degraded_from {
                Some(from) => AdmissionVerdict::Degraded {
                    from,
                    to: effective,
                    backend: plan.backend,
                    cost: plan.cost,
                },
                None => AdmissionVerdict::Admitted {
                    backend: plan.backend,
                    cost: plan.cost,
                },
            }),
            AdmissionDecision::Refuse(reason) => Ok(AdmissionVerdict::Refused { reason }),
            AdmissionDecision::NoBackend(err) => Err(ServiceError::Solve(err)),
        }
    }

    /// A point-in-time snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }
}

/// The plan's floating-point work estimate as integer queue work units
/// (≥ 1; non-finite or sub-unit estimates charge the minimum).
fn work_units(cost_work: f64) -> u64 {
    if cost_work.is_finite() && cost_work >= 1.0 {
        cost_work.min(u64::MAX as f64) as u64
    } else {
        1
    }
}

/// Builder for a [`SchedulingService`].
pub struct ServiceBuilder {
    workers: usize,
    queue_capacity: usize,
    tenants: Vec<(String, TenantPolicy)>,
    default_policy: Option<TenantPolicy>,
    portfolio: Option<Portfolio>,
    age_limit: Option<Duration>,
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceBuilder {
    /// The default aging bound: generous next to the service's
    /// microsecond-to-millisecond solve times, so it never distorts
    /// weighted fairness in steady state, yet it caps how long a
    /// low-weight tenant's head-of-line request can wait under a
    /// sustained flood.
    pub const DEFAULT_AGE_LIMIT: Duration = Duration::from_secs(2);

    /// Defaults: one worker per available core, queue capacity 1024, no
    /// tenants, no default policy, `Portfolio::standard()`, aging bound
    /// [`ServiceBuilder::DEFAULT_AGE_LIMIT`].
    pub fn new() -> Self {
        ServiceBuilder {
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            queue_capacity: 1024,
            tenants: Vec::new(),
            default_policy: None,
            portfolio: None,
            age_limit: Some(Self::DEFAULT_AGE_LIMIT),
        }
    }

    /// Worker-thread count. `0` is allowed and means "admission only":
    /// jobs queue but are never dispatched until shutdown resolves them
    /// with [`ServiceError::ShuttingDown`] — useful for testing
    /// admission behavior deterministically.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Bounded queue capacity (≥ 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        self.queue_capacity = capacity;
        self
    }

    /// Registers a tenant with its admission policy.
    pub fn tenant(mut self, id: impl Into<String>, policy: TenantPolicy) -> Self {
        self.tenants.push((id.into(), policy));
        self
    }

    /// Accepts unknown tenants under this policy, tracked under the
    /// reserved aggregate scope `"*"` (registering a tenant literally
    /// named `"*"` together with a default policy is rejected at
    /// [`ServiceBuilder::build`]). Without it, unknown tenants are
    /// refused.
    pub fn default_policy(mut self, policy: TenantPolicy) -> Self {
        self.default_policy = Some(policy);
        self
    }

    /// Replaces the default `Portfolio::standard()` backend registry.
    pub fn portfolio(mut self, portfolio: Portfolio) -> Self {
        self.portfolio = Some(portfolio);
        self
    }

    /// The aging bound: a queued request older than this is served
    /// next, out of rotation, whatever the tenant weights say — the
    /// worst-case wait for any tenant's next-in-line request is capped
    /// at roughly this bound plus one in-flight solve per worker.
    /// `None` disables aging (pure weighted DRR).
    pub fn age_limit(mut self, limit: Option<Duration>) -> Self {
        self.age_limit = limit;
        self
    }

    /// Starts the service: spawns the worker pool and returns the
    /// running service.
    pub fn build(self) -> SchedulingService {
        let mut tenants: Vec<TenantEntry> = self
            .tenants
            .into_iter()
            .map(|(id, policy)| TenantEntry {
                id,
                policy,
                counters: Counters::new(),
                shedding: AtomicBool::new(false),
            })
            .collect();
        let default_tenant = self.default_policy.map(|policy| {
            assert!(
                tenants.iter().all(|t| t.id != "*"),
                "tenant id \"*\" is reserved for the default policy's aggregate scope"
            );
            tenants.push(TenantEntry {
                id: "*".to_string(),
                policy,
                counters: Counters::new(),
                shedding: AtomicBool::new(false),
            });
            tenants.len() - 1
        });
        let tenant_index: HashMap<String, usize> = tenants
            .iter()
            .enumerate()
            .map(|(idx, t)| (t.id.clone(), idx))
            .collect();
        let weights: Vec<u32> = tenants.iter().map(|t| t.policy.weight).collect();
        let shared = Arc::new(Shared {
            portfolio: self.portfolio.unwrap_or_default(),
            queue: JobQueue::new(self.queue_capacity, &weights, self.age_limit),
            tenants,
            tenant_index,
            default_tenant,
            global: Counters::new(),
            accepting: AtomicBool::new(true),
        });
        let workers = (0..self.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        SchedulingService { shared, workers }
    }
}

/// One worker thread: drain the queue through the shared dispatch core
/// until the queue is closed and empty. The loop is self-healing — no
/// job, however it fails, terminates the thread.
fn worker_loop(shared: &Shared) {
    let mut dispatcher = DispatchWorker::new(&shared.portfolio);
    while let Some(job) = shared.queue.pop() {
        // `resolve_job` already isolates backend panics; this outer
        // guard is the worker's last line of defense — a panic anywhere
        // else in the resolution path must not kill the thread, or the
        // pool would silently shrink under faults. The job's channel
        // drops with it, so its ticket still resolves (to
        // `ShuttingDown` via the disconnect) rather than hanging.
        if catch_unwind(AssertUnwindSafe(|| {
            resolve_job(shared, &mut dispatcher, job)
        }))
        .is_err()
        {
            dispatcher.reset_workspace();
        }
    }
}

/// Resolves one dequeued job: to its terminal outcome, or back into the
/// queue when a panicked attempt has retry budget left. Takes the job
/// boxed — exactly as it leaves the queue — so the worker loop never
/// unboxes the ~200-byte payload onto its stack.
#[allow(clippy::boxed_local)]
fn resolve_job(shared: &Shared, dispatcher: &mut DispatchWorker<'_>, job: Box<Job>) {
    let counters = &shared.tenant(job.tenant_idx).counters;
    if job.cancel.load(Ordering::Relaxed) {
        Counters::bump(&counters.cancelled);
        Counters::bump(&shared.global.cancelled);
        return finish_job(shared, job, Err(ServiceError::Cancelled));
    }
    if job.deadline.is_some_and(|d| Instant::now() >= d) {
        Counters::bump(&counters.expired);
        Counters::bump(&shared.global.expired);
        return finish_job(shared, job, Err(ServiceError::DeadlineExpired));
    }

    // Arm the cooperative probe: the solve observes the ticket's cancel
    // flag and the deadline between kernel rounds / search nodes / dual
    // tests instead of running to completion regardless.
    let mut probe = CancelProbe::with_flag(Arc::clone(&job.cancel));
    if let Some(deadline) = job.deadline {
        probe = probe.and_deadline(deadline);
    }
    dispatcher.set_probe(probe);
    let req = job
        .request
        .instance
        .as_request(job.request.objective, job.effective);
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        dispatcher.solve_planned(&req, &job.plan)
    }));
    dispatcher.clear_probe();

    let outcome: ServiceOutcome = match attempt {
        Ok(Ok(mut solution)) => {
            solution.stats.attempts = job.attempt + 1;
            let latency = job.submitted.elapsed();
            counters.latency.record(latency);
            counters.recent.record(latency);
            shared.global.latency.record(latency);
            shared.global.recent.record(latency);
            Counters::bump(&counters.completed);
            Counters::bump(&shared.global.completed);
            Ok(solution)
        }
        Ok(Err(ModelError::Interrupted {
            reason: InterruptReason::Cancelled,
        })) => {
            Counters::bump(&counters.cancelled);
            Counters::bump(&shared.global.cancelled);
            Err(ServiceError::Cancelled)
        }
        Ok(Err(ModelError::Interrupted {
            reason: InterruptReason::DeadlineExpired,
        })) => {
            Counters::bump(&counters.expired);
            Counters::bump(&shared.global.expired);
            Err(ServiceError::DeadlineExpired)
        }
        Ok(Err(err)) => {
            Counters::bump(&counters.failed);
            Counters::bump(&shared.global.failed);
            Err(ServiceError::Solve(err))
        }
        Err(payload) => {
            // The backend panicked. Quarantine the workspace (the
            // unwound solve may have left its buffers mid-run), then
            // run the tenant's retry/degradation ladder — the worker
            // itself never dies.
            dispatcher.reset_workspace();
            let message = panic_message(&*payload);
            return match retry_after_panic(shared, job, message) {
                None => {}
                Some((job, outcome)) => finish_job(shared, job, outcome),
            };
        }
    };
    finish_job(shared, job, outcome);
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The retry/degradation ladder for a panicked attempt. Returns `None`
/// when the job went back into the queue for another attempt, or
/// `Some((job, outcome))` when the failure is terminal.
///
/// The ladder, in order:
/// 1. while the tenant's [`RetryPolicy`](sws_model::policy::RetryPolicy)
///    has attempts left: sleep the capped exponential backoff (clipped
///    to the job's deadline) and re-queue;
/// 2. once exhausted, if the policy degrades on exhaustion and the
///    guarantee floor admits `PaperRatio`: re-plan at the weaker
///    guarantee — routing around the panicking backend — and spend one
///    final attempt there;
/// 3. otherwise resolve to [`ServiceError::SolverPanicked`].
#[allow(clippy::boxed_local)]
fn retry_after_panic(
    shared: &Shared,
    mut job: Box<Job>,
    message: String,
) -> Option<(Box<Job>, ServiceOutcome)> {
    let entry = shared.tenant(job.tenant_idx);
    let counters = &entry.counters;
    let retry = entry.policy.retry;
    let attempts_made = job.attempt + 1;

    let requeue = if retry.should_retry(attempts_made) {
        let mut backoff = retry.backoff_for(attempts_made);
        if let Some(deadline) = job.deadline {
            backoff = backoff.min(deadline.saturating_duration_since(Instant::now()));
        }
        std::thread::sleep(backoff);
        true
    } else if retry.degrade_on_exhaustion {
        // One extra attempt at the degraded guarantee; `degrade_plan`
        // returns `None` once the job already runs at `PaperRatio` or
        // weaker, so the ladder cannot loop.
        match degrade_plan(shared, &entry.policy, &job) {
            Some((effective, plan)) => {
                Counters::bump(&counters.degraded);
                Counters::bump(&shared.global.degraded);
                job.effective = effective;
                job.work = work_units(plan.cost.work);
                job.plan = plan;
                true
            }
            None => false,
        }
    } else {
        false
    };

    if requeue {
        Counters::bump(&counters.retried);
        Counters::bump(&shared.global.retried);
        job.attempt = attempts_made;
        let priority = job.request.priority;
        let (lane, work) = (job.tenant_idx, job.work);
        match shared.queue.push(lane, priority, work, job) {
            Ok(()) => return None,
            // Queue closed (shutdown) or full: no slot for another
            // attempt, so the failure is terminal after all.
            Err((returned, _)) => job = returned,
        }
    }

    Counters::bump(&counters.panicked);
    Counters::bump(&shared.global.panicked);
    let backend = job.plan.backend;
    Some((job, Err(ServiceError::SolverPanicked { backend, message })))
}

/// The degraded `(guarantee, plan)` for a job whose retry budget is
/// exhausted — `PaperRatio`, when the tenant's floor admits it and the
/// job was running at something stronger. Mirrors the admission-time
/// degradation ladder of [`Shared::decide`].
fn degrade_plan(
    shared: &Shared,
    policy: &TenantPolicy,
    job: &Job,
) -> Option<(Guarantee, SolvePlan)> {
    let stronger = matches!(
        job.effective,
        Guarantee::Exact | Guarantee::EpsilonOptimal(_)
    );
    if !stronger || !Guarantee::PaperRatio.satisfies(&policy.guarantee_floor) {
        return None;
    }
    let req = job
        .request
        .instance
        .as_request(job.request.objective, Guarantee::PaperRatio);
    shared
        .portfolio
        .plan(&req)
        .ok()
        .map(|plan| (Guarantee::PaperRatio, plan))
}

/// Delivers a job's terminal outcome: releases the tenant's in-flight
/// slot and sends through the completion channel. The caller may have
/// dropped the ticket; the outcome is then discarded, which is its
/// terminal state.
#[allow(clippy::boxed_local)]
fn finish_job(shared: &Shared, job: Box<Job>, outcome: ServiceOutcome) {
    let counters = &shared.tenant(job.tenant_idx).counters;
    counters.in_flight.fetch_sub(1, Ordering::Relaxed);
    let _ = job.tx.send(outcome);
}

/// The running service: worker pool + shared state. Submission happens
/// through [`SchedulingService::handle`] clones; the service object
/// itself owns shutdown.
pub struct SchedulingService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl SchedulingService {
    /// A builder with the documented defaults.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::new()
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Graceful shutdown: stop accepting, let the workers drain the
    /// queue, join them, resolve anything left (possible only when the
    /// service runs with zero workers) and return the final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_in_place();
        self.shared.stats()
    }

    fn shutdown_in_place(&mut self) {
        self.shared.accepting.store(false, Ordering::Release);
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // With zero workers nothing drains the queue: resolve leftovers
        // so the exactly-one-outcome contract holds unconditionally.
        // Cancelled jobs report their cancellation; the rest see the
        // shutdown.
        while let Some(job) = self.shared.queue.try_pop() {
            let counters = &self.shared.tenant(job.tenant_idx).counters;
            let outcome = if job.cancel.load(Ordering::Relaxed) {
                Counters::bump(&counters.cancelled);
                Counters::bump(&self.shared.global.cancelled);
                Err(ServiceError::Cancelled)
            } else {
                Err(ServiceError::ShuttingDown)
            };
            counters.in_flight.fetch_sub(1, Ordering::Relaxed);
            let _ = job.tx.send(outcome);
        }
    }

    /// Wall-clock helper: submits a whole batch of requests from this
    /// thread and waits for every outcome, preserving submission order
    /// (refusals land in their slot as `Err`). The service-side
    /// analogue of `BatchScheduler::run_requests`, and the shape the
    /// throughput bench measures. The queue capacity must cover the
    /// batch size, or the tail sees `QueueFull` refusals — that is the
    /// bounded queue working as specified.
    pub fn run_all(&self, requests: Vec<ServiceRequest>) -> Vec<ServiceOutcome> {
        let handle = self.handle();
        let tickets: Vec<Result<Ticket, ServiceError>> =
            requests.into_iter().map(|r| handle.submit(r)).collect();
        // Wait back to front: equal-priority FIFO dispatch resolves the
        // last submission last, so the caller blocks (and wakes) once
        // instead of once per outcome — on a single shared core the
        // per-completion wakeups would otherwise cost a context switch
        // per request. Collecting in reverse and flipping once restores
        // submission order without indexed slots.
        let mut outcomes: Vec<ServiceOutcome> = tickets
            .into_iter()
            .rev()
            .map(|ticket| match ticket {
                Ok(ticket) => ticket.wait(),
                Err(err) => Err(err),
            })
            .collect();
        outcomes.reverse();
        outcomes
    }
}

impl Drop for SchedulingService {
    fn drop(&mut self) {
        // Unconditional and idempotent: even a zero-worker service with
        // an empty queue must stop accepting, or a surviving handle
        // could enqueue a job nothing will ever resolve.
        self.shutdown_in_place();
    }
}
