//! Orchestration: file discovery, the per-file pass (lex → regions →
//! directives → rules → allow filtering), and the cross-file
//! lock-order cycle analysis.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::{Diagnostic, Report};
use crate::directives::{self, Allow};
use crate::lexer;
use crate::regions;
use crate::rules::{self, FileCtx, LockEdgeSite};

/// Result of linting one source text.
pub struct FileResult {
    pub diags: Vec<Diagnostic>,
    /// Per-function mutex acquisition sequences (lexical order).
    pub lock_sequences: Vec<Vec<LockEdgeSite>>,
}

/// Lint one file's source under a logical path. This is the unit the
/// fixture tests drive directly; [`run`] wraps it with file walking and
/// the cycle pass.
pub fn lint_source(path: &str, src: &str) -> FileResult {
    let toks = lexer::lex(src);
    let regs = regions::scan(&toks);
    let dirs = directives::parse(&toks);
    let logical = dirs.treat_as.as_deref().unwrap_or(path);
    let ctx = FileCtx {
        path: logical,
        toks: &toks,
        regions: &regs,
    };

    let mut raw: Vec<Diagnostic> = Vec::new();
    raw.extend(rules::panic_policy(&ctx));
    let (lock_diags, lock_sequences) = rules::lock_discipline(&ctx);
    raw.extend(lock_diags);
    raw.extend(rules::float_discipline(&ctx));
    raw.extend(rules::hot_path_alloc(&ctx));

    let mut allows: Vec<(Allow, bool)> = dirs.allows.into_iter().map(|a| (a, false)).collect();
    let mut diags: Vec<Diagnostic> = Vec::new();
    for d in raw {
        if let Some((_, used)) = allows
            .iter_mut()
            .find(|(a, _)| a.rule == d.rule && a.target.is_none_or(|t| t == d.line))
        {
            *used = true;
        } else {
            diags.push(d);
        }
    }

    // Directive hygiene: malformed directives, unknown rule names,
    // unpaired hot-path markers, and allows that suppressed nothing.
    for (line, why) in dirs.malformed {
        diags.push(Diagnostic {
            rule: rules::MALFORMED_DIRECTIVE,
            file: logical.to_string(),
            line,
            message: why,
        });
    }
    for line in &regs.unpaired_hot_markers {
        diags.push(Diagnostic {
            rule: rules::MALFORMED_DIRECTIVE,
            file: logical.to_string(),
            line: *line,
            message: "unpaired hot-path marker".to_string(),
        });
    }
    for (a, used) in allows {
        if !rules::ALLOWABLE_RULES.contains(&a.rule.as_str()) {
            diags.push(Diagnostic {
                rule: rules::MALFORMED_DIRECTIVE,
                file: logical.to_string(),
                line: a.line,
                message: format!("allow names unknown rule `{}`", a.rule),
            });
        } else if !used {
            diags.push(Diagnostic {
                rule: rules::UNUSED_ALLOW,
                file: logical.to_string(),
                line: a.line,
                message: format!(
                    "allow({}) suppresses nothing; remove it or fix its target",
                    a.rule
                ),
            });
        }
    }

    FileResult {
        diags,
        lock_sequences,
    }
}

/// Build the lock-order graph from every function's acquisition
/// sequence and report each distinct cycle as a potential deadlock.
///
/// The extractor is deliberately conservative and intra-function: an
/// edge A→B means *some* function acquires A lexically before B;
/// guard-drop tracking is beyond a lexical tool, so a reported cycle is
/// a review prompt, not proof. Self-edges (the same lock acquired
/// twice in one function) are excluded — sequential re-acquisition
/// with non-overlapping guards is the common benign shape.
pub fn lock_cycle_diags(sequences: &[Vec<LockEdgeSite>]) -> Vec<Diagnostic> {
    // edge -> first observed site.
    let mut edges: BTreeMap<(String, String), LockEdgeSite> = BTreeMap::new();
    for seq in sequences {
        for i in 0..seq.len() {
            for j in i + 1..seq.len() {
                if seq[i].lock == seq[j].lock {
                    continue;
                }
                edges
                    .entry((seq[i].lock.clone(), seq[j].lock.clone()))
                    .or_insert_with(|| seq[j].clone());
            }
        }
    }
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }

    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    let mut out = Vec::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut path: Vec<&str> = Vec::new();
        dfs(start, &adj, &mut path, &mut |cycle: &[&str]| {
            let key: BTreeSet<String> = cycle.iter().map(|s| s.to_string()).collect();
            if !reported.insert(key) {
                return;
            }
            let mut ring: Vec<&str> = cycle.to_vec();
            ring.push(cycle[0]);
            let sites: Vec<String> = ring
                .windows(2)
                .filter_map(|w| edges.get(&(w[0].to_string(), w[1].to_string())))
                .map(|s| format!("{}:{} in fn {}", s.file, s.line, s.func))
                .collect();
            let site = edges
                .get(&(ring[0].to_string(), ring[1].to_string()))
                .expect("cycle edges exist");
            out.push(Diagnostic {
                rule: rules::LOCK_DISCIPLINE,
                file: site.file.clone(),
                line: site.line,
                message: format!(
                    "potential deadlock: lock-order cycle {} (acquired at {})",
                    ring.join(" -> "),
                    sites.join(", ")
                ),
            });
        });
    }
    out
}

/// Depth-first walk from `node` reporting every cycle that returns to a
/// node currently on `path`. The path bounds recursion depth by the
/// number of distinct lock names, which is tiny in practice.
fn dfs<'g>(
    node: &'g str,
    adj: &BTreeMap<&'g str, Vec<&'g str>>,
    path: &mut Vec<&'g str>,
    on_cycle: &mut dyn FnMut(&[&str]),
) {
    if let Some(pos) = path.iter().position(|&n| n == node) {
        on_cycle(&path[pos..]);
        return;
    }
    path.push(node);
    if let Some(nexts) = adj.get(node) {
        for &next in nexts {
            dfs(next, adj, path, on_cycle);
        }
    }
    path.pop();
}

/// Directories never descended into.
fn skip_dir(name: &str) -> bool {
    name == "target" || name == ".git" || name == "fixtures"
}

/// Recursively collect `.rs` files under `dir`.
fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !skip_dir(name) {
                collect(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run the linter over `root` (or over the explicit `paths` when
/// non-empty), returning the full report. Paths in diagnostics are
/// reported relative to `root` with `/` separators.
pub fn run(root: &Path, paths: &[PathBuf]) -> io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    if paths.is_empty() {
        collect(root, &mut files)?;
    } else {
        for p in paths {
            let abs = if p.is_absolute() {
                p.clone()
            } else {
                root.join(p)
            };
            if abs.is_dir() {
                collect(&abs, &mut files)?;
            } else {
                files.push(abs);
            }
        }
    }

    let mut report = Report::default();
    let mut sequences: Vec<Vec<LockEdgeSite>> = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(file)?;
        let result = lint_source(&rel, &src);
        report.files_scanned += 1;
        report.violations.extend(result.diags);
        sequences.extend(result.lock_sequences);
    }
    report.violations.extend(lock_cycle_diags(&sequences));
    report.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_suppresses_and_is_marked_used() {
        let src =
            "fn f() {\n // sws-lint: allow(panic-policy, reason = \"bounded\")\n x.unwrap();\n}";
        let r = lint_source("crates/service/src/a.rs", src);
        assert!(r.diags.is_empty(), "{:?}", r.diags);
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "// sws-lint: allow(panic-policy, reason = \"stale\")\nfn f() { clean(); }";
        let r = lint_source("crates/service/src/a.rs", src);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].rule, rules::UNUSED_ALLOW);
    }

    #[test]
    fn allow_for_unknown_rule_is_malformed() {
        let src = "// sws-lint: allow(no-such-rule, reason = \"x\")\nfn f() {}";
        let r = lint_source("crates/service/src/a.rs", src);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].rule, rules::MALFORMED_DIRECTIVE);
    }

    #[test]
    fn treat_as_reroutes_scoping() {
        let src = "// sws-lint: treat-as crates/service/src/x.rs\nfn f() { y.unwrap(); }";
        let r = lint_source("crates/lint/fixtures/whatever.rs", src);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].rule, rules::PANIC_POLICY);
        assert_eq!(r.diags[0].file, "crates/service/src/x.rs");
    }

    #[test]
    fn lock_cycle_across_two_functions_is_flagged() {
        let src = "fn ab() { a.lock().unwrap_or_else(PoisonError::into_inner); b.lock().unwrap_or_else(PoisonError::into_inner); }\nfn ba() { b.lock().unwrap_or_else(PoisonError::into_inner); a.lock().unwrap_or_else(PoisonError::into_inner); }";
        let r = lint_source("crates/service/src/q.rs", src);
        assert!(r.diags.is_empty());
        let cycles = lock_cycle_diags(&r.lock_sequences);
        assert_eq!(cycles.len(), 1);
        assert!(cycles[0].message.contains("lock-order cycle"));
        assert!(cycles[0].message.contains("q::a"));
    }

    #[test]
    fn consistent_lock_order_has_no_cycle() {
        let src = "fn ab() { a.lock().unwrap_or_else(PoisonError::into_inner); b.lock().unwrap_or_else(PoisonError::into_inner); }\nfn ab2() { a.lock().unwrap_or_else(PoisonError::into_inner); b.lock().unwrap_or_else(PoisonError::into_inner); }";
        let r = lint_source("crates/service/src/q.rs", src);
        assert!(lock_cycle_diags(&r.lock_sequences).is_empty());
    }
}
