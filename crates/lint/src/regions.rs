//! Region tracking over the token stream: `#[cfg(test)]` items,
//! function bodies (for the lock-nesting extractor), and
//! `// sws-lint: hot-path` … `// sws-lint: end-hot-path` spans.
//!
//! Everything here is brace-aware but type-blind: regions are resolved
//! by matching bracket tokens, and membership queries are by source
//! line — the same currency diagnostics and allow-directives use.

use crate::lexer::{Kind, Tok};

/// An inclusive line range `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineRange {
    pub start: u32,
    pub end: u32,
}

impl LineRange {
    pub fn contains(&self, line: u32) -> bool {
        self.start <= line && line <= self.end
    }
}

/// A function item: name, body token range (exclusive of the braces),
/// and its line span. Closures are not functions; nested `fn` items are
/// recorded separately (their tokens appear in both bodies, which is
/// the conservative choice for lock-order extraction).
#[derive(Debug, Clone)]
pub struct FnRegion {
    pub name: String,
    /// Token indices of the body, `open_brace + 1 .. close_brace`.
    pub body: (usize, usize),
    pub lines: LineRange,
}

/// All regions of one file.
#[derive(Debug, Default)]
pub struct Regions {
    pub test: Vec<LineRange>,
    pub functions: Vec<FnRegion>,
    pub hot: Vec<LineRange>,
    /// Lines of `hot-path` / `end-hot-path` markers that could not be
    /// paired; the engine reports these as `malformed-directive`.
    pub unpaired_hot_markers: Vec<u32>,
}

impl Regions {
    pub fn in_test(&self, line: u32) -> bool {
        self.test.iter().any(|r| r.contains(line))
    }

    pub fn in_hot(&self, line: u32) -> bool {
        self.hot.iter().any(|r| r.contains(line))
    }

    /// Innermost function whose body covers token index `i` (the last
    /// match wins: later-recorded functions are the nested ones).
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnRegion> {
        self.functions
            .iter()
            .filter(|f| f.body.0 <= i && i < f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }
}

/// Index of the token matching the opening bracket at `open`, or the
/// last token when unbalanced (EOF recovery).
pub fn matching_close(toks: &[Tok], open: usize) -> usize {
    debug_assert!(toks[open].kind == Kind::Open);
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            Kind::Open => depth += 1,
            Kind::Close => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Compute all regions for one token stream.
pub fn scan(toks: &[Tok]) -> Regions {
    let mut out = Regions::default();
    scan_test_items(toks, &mut out);
    scan_functions(toks, &mut out);
    scan_hot_markers(toks, &mut out);
    out
}

/// True when the attribute token slice (the tokens between `#[` and the
/// matching `]`) gates the item to test builds: `#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, …))]`. `cfg(not(test))` and
/// `cfg_attr` are explicitly *not* test gates.
fn is_test_attr(attr: &[Tok]) -> bool {
    let idents: Vec<&str> = attr
        .iter()
        .filter(|t| t.kind == Kind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    match idents.first() {
        Some(&"test") => true,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    }
}

fn scan_test_items(toks: &[Tok], out: &mut Regions) {
    let mut i = 0;
    while i < toks.len() {
        // Outer attribute: `#` `[` … `]` (skip inner `#![…]`).
        if toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].opens('[') {
            let close = matching_close(toks, i + 1);
            let attr_line = toks[i].line;
            if is_test_attr(&toks[i + 2..close]) {
                if let Some(range) = item_extent(toks, close + 1, attr_line) {
                    out.test.push(range);
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
}

/// The line extent of the item starting at token `from` (after its
/// attribute): further attributes are skipped, then everything up to
/// the matching `}` of the first item-level `{`, or up to a `;` for
/// brace-less items (`#[cfg(test)] use …;`).
fn item_extent(toks: &[Tok], mut from: usize, attr_line: u32) -> Option<LineRange> {
    // Skip stacked attributes and comments.
    while from < toks.len() {
        if toks[from].kind == Kind::Comment {
            from += 1;
        } else if toks[from].is_punct("#") && from + 1 < toks.len() && toks[from + 1].opens('[') {
            from = matching_close(toks, from + 1) + 1;
        } else {
            break;
        }
    }
    let mut depth = 0usize;
    let mut i = from;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            Kind::Open if t.opens('{') && depth == 0 => {
                let close = matching_close(toks, i);
                return Some(LineRange {
                    start: attr_line,
                    end: toks[close].line,
                });
            }
            Kind::Open => depth += 1,
            Kind::Close => depth = depth.saturating_sub(1),
            Kind::Punct if t.text == ";" && depth == 0 => {
                return Some(LineRange {
                    start: attr_line,
                    end: t.line,
                });
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn scan_functions(toks: &[Tok], out: &mut Regions) {
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name_idx) = crate::lexer::next_code(toks, i) else {
            continue;
        };
        if toks[name_idx].kind != Kind::Ident {
            continue; // `fn` in `Fn()` bounds etc.
        }
        // Find the body `{` at bracket depth 0, or `;` (trait method
        // declaration, no body).
        let mut depth = 0usize;
        let mut j = name_idx + 1;
        while j < toks.len() {
            let t = &toks[j];
            match t.kind {
                Kind::Open if t.opens('{') && depth == 0 => {
                    let close = matching_close(toks, j);
                    out.functions.push(FnRegion {
                        name: toks[name_idx].text.clone(),
                        body: (j + 1, close),
                        lines: LineRange {
                            start: toks[i].line,
                            end: toks[close].line,
                        },
                    });
                    break;
                }
                Kind::Open => depth += 1,
                Kind::Close => depth = depth.saturating_sub(1),
                Kind::Punct if t.text == ";" && depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
    }
}

fn scan_hot_markers(toks: &[Tok], out: &mut Regions) {
    let mut open: Option<u32> = None;
    for t in toks {
        if t.kind != Kind::Comment {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("sws-lint:") else {
            continue;
        };
        match rest.trim() {
            "hot-path" => {
                if let Some(line) = open {
                    out.unpaired_hot_markers.push(line);
                }
                open = Some(t.line);
            }
            "end-hot-path" => match open.take() {
                Some(start) => out.hot.push(LineRange { start, end: t.line }),
                None => out.unpaired_hot_markers.push(t.line),
            },
            _ => {}
        }
    }
    if let Some(line) = open {
        out.unpaired_hot_markers.push(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let src =
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() {}";
        let r = scan(&lex(src));
        assert!(!r.in_test(1));
        assert!(r.in_test(2));
        assert!(r.in_test(4));
        assert!(r.in_test(5));
        assert!(!r.in_test(6));
    }

    #[test]
    fn test_attribute_on_fn_is_a_test_region() {
        let src = "#[test]\nfn check() {\n  body();\n}\nfn prod() {}";
        let r = scan(&lex(src));
        assert!(r.in_test(3));
        assert!(!r.in_test(5));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn prod() { body(); }";
        let r = scan(&lex(src));
        assert!(!r.in_test(2));
    }

    #[test]
    fn cfg_all_test_counts_and_braceless_items_end_at_semicolon() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nuse helper::*;\nfn prod() {}";
        let r = scan(&lex(src));
        assert!(r.in_test(2));
        assert!(!r.in_test(3));
    }

    #[test]
    fn stacked_attributes_cover_the_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t {\n  x\n}";
        let r = scan(&lex(src));
        assert!(r.in_test(4));
    }

    #[test]
    fn functions_are_recorded_with_bodies() {
        let src = "fn outer(a: usize) -> usize {\n  inner();\n  fn inner() {}\n  a\n}";
        let r = scan(&lex(src));
        let names: Vec<&str> = r.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let src = "trait T {\n  fn decl(&self) -> usize;\n  fn with_default(&self) { x() }\n}";
        let r = scan(&lex(src));
        let names: Vec<&str> = r.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_default"]);
    }

    #[test]
    fn fn_with_where_clause_and_generics() {
        let src = "fn g<F: Fn() -> Vec<u8>>(f: F) -> bool\nwhere F: Clone {\n  f().is_empty()\n}";
        let r = scan(&lex(src));
        assert_eq!(r.functions.len(), 1);
        assert_eq!(r.functions[0].lines, LineRange { start: 1, end: 4 });
    }

    #[test]
    fn hot_markers_pair_up_and_report_stragglers() {
        let src = "// sws-lint: hot-path\na();\n// sws-lint: end-hot-path\nb();\n// sws-lint: end-hot-path";
        let r = scan(&lex(src));
        assert!(r.in_hot(2));
        assert!(!r.in_hot(4));
        assert_eq!(r.unpaired_hot_markers, vec![5]);
    }
}
