//! `// sws-lint: …` directive parsing.
//!
//! Supported forms:
//!
//! * `// sws-lint: allow(<rule>, reason = "…")` — suppress `<rule>` on
//!   the directive's own line (trailing form) or, when the directive is
//!   alone on its line, on the **next line containing code**. Stacked
//!   directive lines all target the same following code line.
//! * `// sws-lint: allow-file(<rule>, reason = "…")` — suppress
//!   `<rule>` for the whole file.
//! * `// sws-lint: hot-path` / `// sws-lint: end-hot-path` — delimit a
//!   hot-path region (handled by [`crate::regions`]).
//! * `// sws-lint: treat-as <path>` — lint this file as if it lived at
//!   `<path>` (rule scoping is path-based; fixtures use this).
//!
//! A reason is mandatory and must be non-empty: an allow-directive is a
//! reviewed justification, not an off switch. Malformed directives are
//! themselves diagnostics (`malformed-directive`), and allows that
//! suppress nothing are reported as `unused-allow` so stale
//! justifications cannot linger.

use crate::lexer::{Kind, Tok};

/// One parsed `allow` / `allow-file` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: String,
    pub reason: String,
    /// Line the directive comment sits on.
    pub line: u32,
    /// Line whose diagnostics it suppresses; `None` = whole file.
    pub target: Option<u32>,
}

/// Parse results for one file.
#[derive(Debug, Default)]
pub struct Directives {
    pub allows: Vec<Allow>,
    /// Overrides the path used for rule scoping (`treat-as`).
    pub treat_as: Option<String>,
    /// `(line, explanation)` pairs for unparseable directives.
    pub malformed: Vec<(u32, String)>,
}

/// Extract directives from the token stream. `toks` must be the full
/// file stream so line targeting can see neighbouring code tokens.
pub fn parse(toks: &[Tok]) -> Directives {
    let mut out = Directives::default();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != Kind::Comment || !t.text.starts_with("//") {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("sws-lint:") else {
            continue;
        };
        let rest = rest.trim();
        if rest == "hot-path" || rest == "end-hot-path" {
            continue; // region markers, handled elsewhere
        }
        if let Some(path) = rest.strip_prefix("treat-as") {
            let path = path.trim();
            if path.is_empty() {
                out.malformed
                    .push((t.line, "treat-as needs a path".to_string()));
            } else {
                out.treat_as = Some(path.to_string());
            }
            continue;
        }
        let (file_scoped, args) = if let Some(a) = rest.strip_prefix("allow-file") {
            (true, a)
        } else if let Some(a) = rest.strip_prefix("allow") {
            (false, a)
        } else {
            out.malformed.push((
                t.line,
                format!("unknown directive `{rest}` (expected allow, allow-file, hot-path, end-hot-path, or treat-as)"),
            ));
            continue;
        };
        match parse_allow_args(args) {
            Ok((rule, reason)) => {
                let target = if file_scoped {
                    None
                } else {
                    Some(target_line(toks, i))
                };
                out.allows.push(Allow {
                    rule,
                    reason,
                    line: t.line,
                    target,
                });
            }
            Err(why) => out.malformed.push((t.line, why)),
        }
    }
    out
}

/// Parse `(<rule>, reason = "…")`.
fn parse_allow_args(args: &str) -> Result<(String, String), String> {
    let args = args.trim();
    let inner = args
        .strip_prefix('(')
        .and_then(|a| a.strip_suffix(')'))
        .ok_or_else(|| "allow directive needs (<rule>, reason = \"…\")".to_string())?;
    let (rule, rest) = inner
        .split_once(',')
        .ok_or_else(|| "allow directive needs a reason".to_string())?;
    let rule = rule.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return Err(format!("bad rule name `{rule}`"));
    }
    let rest = rest.trim();
    let value = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .ok_or_else(|| "allow directive needs reason = \"…\"".to_string())?;
    let reason = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| "reason must be a quoted string".to_string())?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty".to_string());
    }
    Ok((rule.to_string(), reason.to_string()))
}

/// The line a non-file allow at token `i` suppresses: its own line when
/// code precedes it there (trailing form), otherwise the line of the
/// next non-comment token.
fn target_line(toks: &[Tok], i: usize) -> u32 {
    let line = toks[i].line;
    let trailing = toks[..i]
        .iter()
        .rev()
        .take_while(|t| t.line == line)
        .any(|t| t.kind != Kind::Comment);
    if trailing {
        return line;
    }
    toks[i + 1..]
        .iter()
        .find(|t| t.kind != Kind::Comment)
        .map(|t| t.line)
        .unwrap_or(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let src = "let x = v[0]; // sws-lint: allow(panic-policy, reason = \"bounded above\")";
        let d = parse(&lex(src));
        assert_eq!(d.allows.len(), 1);
        assert_eq!(d.allows[0].rule, "panic-policy");
        assert_eq!(d.allows[0].target, Some(1));
    }

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let src = "\n// sws-lint: allow(float-discipline, reason = \"exact sentinel\")\n// explanatory comment\nif x == 0.0 {}\n";
        let d = parse(&lex(src));
        assert_eq!(d.allows[0].target, Some(4));
    }

    #[test]
    fn stacked_allows_share_a_target() {
        let src = "// sws-lint: allow(panic-policy, reason = \"a\")\n// sws-lint: allow(float-discipline, reason = \"b\")\ncode();";
        let d = parse(&lex(src));
        assert_eq!(d.allows[0].target, Some(3));
        assert_eq!(d.allows[1].target, Some(3));
    }

    #[test]
    fn allow_file_has_no_target() {
        let src = "// sws-lint: allow-file(hot-path-alloc, reason = \"generated\")\nfn f() {}";
        let d = parse(&lex(src));
        assert_eq!(d.allows[0].target, None);
    }

    #[test]
    fn treat_as_overrides_path() {
        let src = "// sws-lint: treat-as crates/service/src/x.rs\nfn f() {}";
        let d = parse(&lex(src));
        assert_eq!(d.treat_as.as_deref(), Some("crates/service/src/x.rs"));
    }

    #[test]
    fn malformed_directives_are_reported() {
        for bad in [
            "// sws-lint: allow(panic-policy)",
            "// sws-lint: allow(panic-policy, reason = \"\")",
            "// sws-lint: allow(panic policy, reason = \"x\")",
            "// sws-lint: frobnicate",
            "// sws-lint: treat-as",
        ] {
            let d = parse(&lex(bad));
            assert_eq!(d.malformed.len(), 1, "should reject: {bad}");
            assert!(d.allows.is_empty());
        }
    }

    #[test]
    fn a_directive_inside_a_string_is_text() {
        let src = "let s = \"// sws-lint: allow(panic-policy, reason = \\\"no\\\")\";";
        let d = parse(&lex(src));
        assert!(d.allows.is_empty());
    }
}
