#![forbid(unsafe_code)]
//! # sws-lint — the workspace invariant linter
//!
//! The correctness story of this workspace rests on invariants the
//! compiler cannot see: bit-identical kernel results depend on every
//! f64 comparison routing through `sws_model::numeric`, the
//! fault-tolerant service runtime depends on panic-free non-test code
//! and poison-recovering mutex acquisition, and the allocation-free
//! kernel contract has no guard at all. `sws-lint` enforces them
//! statically, on every PR, with a hand-rolled tokenizer (the
//! workspace builds offline — no `syn`) and a brace/`#[cfg(test)]`-
//! aware region tracker.
//!
//! Rules:
//!
//! * **panic-policy** — no `unwrap()`/`expect()`/`panic!`/
//!   `unreachable!`/`todo!`/`unimplemented!`/slice indexing in
//!   non-test code of `crates/service` and `crates/core/src/dispatch.rs`;
//! * **lock-discipline** — in `crates/service`, every mutex
//!   acquisition goes through the poison-recovering `lock()` helper
//!   (or recovers inline), plus a lock-order graph whose cycles are
//!   flagged as potential deadlocks;
//! * **float-discipline** — no raw f64 comparisons or
//!   `partial_cmp`/`total_cmp` calls in `crates/core`/`crates/listsched`
//!   outside `sws_model::numeric`;
//! * **hot-path-alloc** — no allocation calls inside
//!   `// sws-lint: hot-path` regions.
//!
//! Violations are suppressed, with a mandatory reason, by
//! `// sws-lint: allow(<rule>, reason = "…")` directives; stale or
//! malformed directives are violations themselves. See
//! `docs/STATIC_ANALYSIS.md` for the full catalogue.
//!
//! Run as `cargo run -p sws-lint -- --ci` (exit 0 clean, 1 violations,
//! 2 usage/IO error) or drive [`engine::lint_source`] directly from
//! tests.

pub mod diag;
pub mod directives;
pub mod engine;
pub mod lexer;
pub mod regions;
pub mod rules;

pub use diag::{Diagnostic, Report};
pub use engine::{lint_source, run};
