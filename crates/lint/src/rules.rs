//! The four invariant rules.
//!
//! Each rule is a pure function over one file's tokens + regions; rule
//! applicability is decided by the file's (logical) path. See
//! `docs/STATIC_ANALYSIS.md` for the rationale behind each rule and
//! which PR's invariant it pins.

use crate::diag::Diagnostic;
use crate::lexer::{is_keyword, next_code, prev_code, Kind, Tok};
use crate::regions::Regions;

pub const PANIC_POLICY: &str = "panic-policy";
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
pub const FLOAT_DISCIPLINE: &str = "float-discipline";
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
pub const MALFORMED_DIRECTIVE: &str = "malformed-directive";
pub const UNUSED_ALLOW: &str = "unused-allow";

/// Rules an allow-directive may name.
pub const ALLOWABLE_RULES: &[&str] = &[
    PANIC_POLICY,
    LOCK_DISCIPLINE,
    FLOAT_DISCIPLINE,
    HOT_PATH_ALLOC,
];

/// One file as the rules see it.
pub struct FileCtx<'a> {
    /// Logical path, `/`-separated and workspace-relative; rule
    /// scoping keys on it (fixtures override it with `treat-as`).
    pub path: &'a str,
    pub toks: &'a [Tok],
    pub regions: &'a Regions,
}

impl FileCtx<'_> {
    fn diag(&self, rule: &'static str, line: u32, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            file: self.path.to_string(),
            line,
            message,
        }
    }

    /// Rules never fire inside `#[cfg(test)]` items.
    fn live(&self, line: u32) -> bool {
        !self.regions.in_test(line)
    }
}

/// Paths whose non-test code must not panic: the fault-tolerant service
/// runtime and the shared dispatch core it relies on (PR 6's "workers
/// never die" contract), plus the simulator — it is the differential
/// oracle replayed against arbitrary (including deserialized) traces,
/// and an oracle that aborts mid-comparison reports nothing.
pub fn panic_policy_scope(path: &str) -> bool {
    path.starts_with("crates/service/src/")
        || path.starts_with("crates/simulator/src/")
        || path == "crates/core/src/dispatch.rs"
}

/// Paths where every mutex acquisition must be poison-recovering.
pub fn lock_discipline_scope(path: &str) -> bool {
    path.starts_with("crates/service/src/")
}

/// Paths whose f64 comparisons must route through `sws_model::numeric`
/// (bit-identity of kernel results rests on one shared tolerance).
pub fn float_discipline_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/") || path.starts_with("crates/listsched/src/")
}

// ---------------------------------------------------------------------------
// panic-policy
// ---------------------------------------------------------------------------

/// `unwrap()` / `expect()` / `panic!` / `unreachable!` / `todo!` /
/// `unimplemented!` / slice indexing in non-test code of the scoped
/// paths. Indexing is recognised lexically: a `[` directly after an
/// identifier (that is not a keyword), `)`, `]` or `?` is an index
/// expression; after anything else it is an array literal, type, or
/// pattern.
pub fn panic_policy(ctx: &FileCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !panic_policy_scope(ctx.path) {
        return out;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if !ctx.live(t.line) {
            continue;
        }
        match t.kind {
            Kind::Ident if t.text == "unwrap" || t.text == "expect" => {
                let dotted = prev_code(toks, i).is_some_and(|j| toks[j].is_punct("."));
                let called = next_code(toks, i).is_some_and(|j| toks[j].opens('('));
                if dotted && called {
                    out.push(ctx.diag(
                        PANIC_POLICY,
                        t.line,
                        format!(
                            ".{}() can panic; return a typed error or add an allow-directive",
                            t.text
                        ),
                    ));
                }
            }
            Kind::Ident
                if matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && next_code(toks, i).is_some_and(|j| toks[j].is_punct("!")) =>
            {
                out.push(ctx.diag(
                    PANIC_POLICY,
                    t.line,
                    format!("{}! is forbidden in service paths", t.text),
                ));
            }
            Kind::Open if t.opens('[') => {
                let indexing = prev_code(toks, i).is_some_and(|j| match toks[j].kind {
                    Kind::Ident => !is_keyword(&toks[j].text),
                    Kind::Close => toks[j].closes(')') || toks[j].closes(']'),
                    Kind::Punct => toks[j].text == "?",
                    _ => false,
                });
                if indexing {
                    out.push(ctx.diag(
                        PANIC_POLICY,
                        t.line,
                        "slice indexing can panic; use .get()/.get_mut() or add an allow-directive"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// lock-discipline
// ---------------------------------------------------------------------------

/// One mutex acquisition observed inside a function; feeds the global
/// lock-order graph.
#[derive(Debug, Clone)]
pub struct LockEdgeSite {
    /// Node name: `<file stem>::<receiver path>` — good enough to be
    /// stable within a file, where lexical ordering is meaningful.
    pub lock: String,
    pub file: String,
    pub line: u32,
    pub func: String,
}

/// Raw `.lock()` detection plus per-function acquisition sequences.
///
/// An acquisition is permitted when it is (a) inside a function named
/// `lock` (the poison-recovering helper's own body), (b) the helper
/// idiom `self.lock()`, or (c) immediately recovered inline via
/// `.unwrap_or_else(PoisonError::into_inner)`. Everything else is a
/// violation: a bare `.lock()` returns a `Result` someone will
/// `unwrap`, which is exactly the poison-propagation PR 6 removed.
pub fn lock_discipline(ctx: &FileCtx) -> (Vec<Diagnostic>, Vec<Vec<LockEdgeSite>>) {
    let mut diags = Vec::new();
    let mut sequences: Vec<Vec<LockEdgeSite>> = Vec::new();
    if !lock_discipline_scope(ctx.path) {
        return (diags, sequences);
    }
    let toks = ctx.toks;
    let stem = std::path::Path::new(ctx.path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(ctx.path)
        .to_string();
    // Acquisitions grouped by innermost enclosing function.
    let mut per_fn: Vec<(String, Vec<LockEdgeSite>)> = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("lock") {
            continue;
        }
        let Some(dot) = prev_code(toks, i) else {
            continue;
        };
        if !toks[dot].is_punct(".") {
            continue;
        }
        if !next_code(toks, i).is_some_and(|j| toks[j].opens('(')) {
            continue;
        }
        if !ctx.live(toks[i].line) {
            continue;
        }
        let receiver = receiver_path(toks, dot);
        let func = ctx
            .regions
            .enclosing_fn(i)
            .map(|f| f.name.clone())
            .unwrap_or_default();
        let in_helper_body = func == "lock";
        let helper_call = receiver == "self";
        let inline_recovery = recovers_inline(toks, i);
        if !(in_helper_body || helper_call || inline_recovery) {
            diags.push(ctx.diag(
                LOCK_DISCIPLINE,
                toks[i].line,
                format!(
                    "raw `{receiver}.lock()`: acquire through the poison-recovering lock() \
                     helper (or recover inline with unwrap_or_else(PoisonError::into_inner))"
                ),
            ));
        }
        if func.is_empty() {
            continue;
        }
        let site = LockEdgeSite {
            lock: format!("{stem}::{receiver}"),
            file: ctx.path.to_string(),
            line: toks[i].line,
            func: func.clone(),
        };
        match per_fn.iter_mut().find(|(f, _)| *f == func) {
            Some((_, seq)) => seq.push(site),
            None => per_fn.push((func, vec![site])),
        }
    }
    sequences.extend(per_fn.into_iter().map(|(_, seq)| seq));
    (diags, sequences)
}

/// Dotted receiver path ending at the `.` before `lock`: for
/// `self.shared.queue.lock()` returns `self.shared.queue`; a
/// non-path receiver (`foo().lock()`) collapses to `<expr>`.
fn receiver_path(toks: &[Tok], dot: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut at = dot;
    while let Some(seg) = prev_code(toks, at) {
        if toks[seg].kind != Kind::Ident {
            if parts.is_empty() {
                return "<expr>".to_string();
            }
            break;
        }
        parts.push(&toks[seg].text);
        match prev_code(toks, seg) {
            Some(d) if toks[d].is_punct(".") => at = d,
            _ => break,
        }
    }
    parts.reverse();
    parts.join(".")
}

/// True when the `.lock()` at ident index `i` is immediately followed
/// by `.unwrap_or_else(PoisonError::into_inner)` (whitespace/comments
/// and line breaks allowed between tokens).
fn recovers_inline(toks: &[Tok], i: usize) -> bool {
    // i -> `(` -> `)` -> `.` -> `unwrap_or_else` -> `(` … PoisonError
    // `::` into_inner … `)`.
    let mut at = i;
    for expect in ["(", ")", ".", "unwrap_or_else", "("] {
        let Some(j) = next_code(toks, at) else {
            return false;
        };
        let ok = match expect {
            "(" => toks[j].opens('('),
            ")" => toks[j].closes(')'),
            "." => toks[j].is_punct("."),
            word => toks[j].is_ident(word),
        };
        if !ok {
            return false;
        }
        at = j;
    }
    let close = crate::regions::matching_close(toks, at);
    let args = &toks[at + 1..close];
    args.windows(3)
        .any(|w| w[0].is_ident("PoisonError") && w[1].is_punct("::") && w[2].is_ident("into_inner"))
}

// ---------------------------------------------------------------------------
// float-discipline
// ---------------------------------------------------------------------------

const F64_CONSTS: &[&str] = &[
    "INFINITY",
    "NEG_INFINITY",
    "NAN",
    "EPSILON",
    "MAX",
    "MIN",
    "MIN_POSITIVE",
];

/// Raw f64 comparisons outside `sws_model::numeric`.
///
/// Without type information the rule keys on lexical evidence of a
/// float operand: a comparison operator (`==`, `!=`, `<`, `<=`, `>`,
/// `>=`) whose immediate left or right operand is a float literal or an
/// `f64::CONST` path, plus every `.partial_cmp(` / `.total_cmp(` call
/// (those are the escape hatches that bypass the shared tolerance).
/// Pure variable-vs-variable float comparisons are invisible to a
/// tokenizer — the differential suites still back the rule up at
/// runtime; this is the documented static floor.
pub fn float_discipline(ctx: &FileCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !float_discipline_scope(ctx.path) {
        return out;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if !ctx.live(t.line) {
            continue;
        }
        // `.partial_cmp(` / `.total_cmp(` method calls.
        if t.kind == Kind::Ident && (t.text == "partial_cmp" || t.text == "total_cmp") {
            let dotted = prev_code(toks, i).is_some_and(|j| toks[j].is_punct("."));
            let called = next_code(toks, i).is_some_and(|j| toks[j].opens('('));
            if dotted && called {
                out.push(ctx.diag(
                    FLOAT_DISCIPLINE,
                    t.line,
                    format!(
                        ".{}() bypasses the shared tolerance; use sws_model::numeric \
                         (total_cmp, approx_*, finite_*)",
                        t.text
                    ),
                ));
                continue;
            }
        }
        if t.kind != Kind::Punct
            || !matches!(t.text.as_str(), "==" | "!=" | "<" | "<=" | ">" | ">=")
        {
            continue;
        }
        if float_operand_left(toks, i) || float_operand_right(toks, i) {
            out.push(ctx.diag(
                FLOAT_DISCIPLINE,
                t.line,
                format!(
                    "raw f64 comparison `{}` with a float operand; route through \
                     sws_model::numeric (approx_*, strictly_*, finite_*)",
                    t.text
                ),
            ));
        }
    }
    out
}

fn is_float_const_path(toks: &[Tok], const_idx: usize) -> bool {
    if toks[const_idx].kind != Kind::Ident || !F64_CONSTS.contains(&toks[const_idx].text.as_str()) {
        return false;
    }
    let Some(sep) = prev_code(toks, const_idx) else {
        return false;
    };
    if !toks[sep].is_punct("::") {
        return false;
    }
    prev_code(toks, sep).is_some_and(|j| toks[j].is_ident("f64") || toks[j].is_ident("f32"))
}

fn float_operand_left(toks: &[Tok], op: usize) -> bool {
    let Some(j) = prev_code(toks, op) else {
        return false;
    };
    matches!(toks[j].kind, Kind::Num { float: true }) || is_float_const_path(toks, j)
}

fn float_operand_right(toks: &[Tok], op: usize) -> bool {
    let mut at = op;
    // Skip unary minus and opening parens: `x < -(1.0)`.
    loop {
        let Some(j) = next_code(toks, at) else {
            return false;
        };
        if toks[j].is_punct("-") || toks[j].opens('(') {
            at = j;
            continue;
        }
        if matches!(toks[j].kind, Kind::Num { float: true }) {
            return true;
        }
        // `f64::CONST` on the right.
        if toks[j].is_ident("f64") || toks[j].is_ident("f32") {
            if let Some(sep) = next_code(toks, j) {
                if toks[sep].is_punct("::") {
                    if let Some(c) = next_code(toks, sep) {
                        return F64_CONSTS.contains(&toks[c].text.as_str());
                    }
                }
            }
        }
        return false;
    }
}

// ---------------------------------------------------------------------------
// hot-path-alloc
// ---------------------------------------------------------------------------

/// Allocation calls inside `// sws-lint: hot-path` regions: the
/// allocation-free kernel contract (PR 3) has no compiler guard — this
/// rule is it. Applies to any file carrying hot-path markers.
pub fn hot_path_alloc(ctx: &FileCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if ctx.regions.hot.is_empty() {
        return out;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if !ctx.regions.in_hot(t.line) || !ctx.live(t.line) {
            continue;
        }
        if t.kind != Kind::Ident {
            continue;
        }
        // `Vec::new`, `Vec::with_capacity`, `Box::new`, `String::new`,
        // `String::from`, `Vec::from`.
        if matches!(t.text.as_str(), "Vec" | "Box" | "String") {
            if let Some(sep) = next_code(toks, i) {
                if toks[sep].is_punct("::") {
                    if let Some(m) = next_code(toks, sep) {
                        if matches!(toks[m].text.as_str(), "new" | "with_capacity" | "from") {
                            out.push(ctx.diag(
                                HOT_PATH_ALLOC,
                                t.line,
                                format!(
                                    "{}::{} allocates inside a hot-path region",
                                    t.text, toks[m].text
                                ),
                            ));
                        }
                    }
                }
            }
            continue;
        }
        // `vec![…]`, `format!(…)`.
        if matches!(t.text.as_str(), "vec" | "format")
            && next_code(toks, i).is_some_and(|j| toks[j].is_punct("!"))
        {
            out.push(ctx.diag(
                HOT_PATH_ALLOC,
                t.line,
                format!("{}! allocates inside a hot-path region", t.text),
            ));
            continue;
        }
        // `.to_vec()`, `.collect()`, `.to_owned()`, `.to_string()`.
        if matches!(
            t.text.as_str(),
            "to_vec" | "collect" | "to_owned" | "to_string"
        ) {
            let dotted = prev_code(toks, i).is_some_and(|j| toks[j].is_punct("."));
            let called = next_code(toks, i).is_some_and(|j| toks[j].opens('('));
            if dotted && called {
                out.push(ctx.diag(
                    HOT_PATH_ALLOC,
                    t.line,
                    format!(".{}() allocates inside a hot-path region", t.text),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::regions::scan;

    fn run_rule<F, T>(path: &str, src: &str, f: F) -> T
    where
        F: FnOnce(&FileCtx) -> T,
    {
        let toks = lex(src);
        let regions = scan(&toks);
        f(&FileCtx {
            path,
            toks: &toks,
            regions: &regions,
        })
    }

    #[test]
    fn panic_policy_only_fires_in_scope() {
        let src = "fn f() { x.unwrap(); }";
        let hits = run_rule("crates/service/src/a.rs", src, panic_policy);
        assert_eq!(hits.len(), 1);
        let hits = run_rule("crates/core/src/rls.rs", src, panic_policy);
        assert!(hits.is_empty());
        let hits = run_rule("crates/core/src/dispatch.rs", src, panic_policy);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn indexing_versus_array_literals() {
        let src = "fn f() {\n let a = xs[i];\n let b = [0u8; 4];\n for v in [1, 2] {}\n let c = f(xs)[0];\n #[allow(dead_code)]\n let d = m[k][j];\n}";
        let hits = run_rule("crates/service/src/a.rs", src, panic_policy);
        let lines: Vec<u32> = hits.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![2, 5, 7, 7]);
    }

    #[test]
    fn unwrap_like_names_do_not_fire() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(f); z.expect_err(\"e\"); }";
        let hits = run_rule("crates/service/src/a.rs", src, panic_policy);
        assert!(hits.is_empty());
    }

    #[test]
    fn lock_helper_and_inline_recovery_are_permitted() {
        let src = "impl Q {\n fn lock(&self) -> G { self.inner.lock().unwrap_or_else(PoisonError::into_inner) }\n fn ok(&self) { let g = self.lock(); }\n fn inline(&self) { self.fired.lock().unwrap_or_else(PoisonError::into_inner); }\n fn bad(&self) { self.raw.lock().unwrap(); }\n}";
        let (hits, _) = run_rule("crates/service/src/q.rs", src, lock_discipline);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 5);
        assert!(hits[0].message.contains("self.raw"));
    }

    #[test]
    fn lock_sequences_group_by_function() {
        let src = "fn ab(x: &L) { a.lock().unwrap_or_else(PoisonError::into_inner); b.lock().unwrap_or_else(PoisonError::into_inner); }";
        let (_, seqs) = run_rule("crates/service/src/q.rs", src, lock_discipline);
        assert_eq!(seqs.len(), 1);
        let names: Vec<&str> = seqs[0].iter().map(|s| s.lock.as_str()).collect();
        assert_eq!(names, vec!["q::a", "q::b"]);
    }

    #[test]
    fn float_rule_catches_literals_consts_and_partial_cmp() {
        let src = "fn f() {\n if delta <= 2.0 {}\n if x == f64::INFINITY {}\n if a.partial_cmp(&b) == Some(O) {}\n if n < m {}\n if k < 10 {}\n}";
        let hits = run_rule("crates/core/src/rls.rs", src, float_discipline);
        let lines: Vec<u32> = hits.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![2, 3, 4]);
    }

    #[test]
    fn float_rule_ignores_generics_and_test_code() {
        let src = "fn f(v: Vec<f64>) -> Option<f64> { v.first().copied() }\n#[cfg(test)]\nmod t { fn g() { assert!(x < 1.0); } }";
        let hits = run_rule("crates/core/src/rls.rs", src, float_discipline);
        assert!(hits.is_empty());
    }

    #[test]
    fn hot_path_rule_needs_markers() {
        let src = "fn cold() { let v = Vec::new(); }\nfn hot() {\n // sws-lint: hot-path\n let v: Vec<u8> = xs.iter().collect();\n let w = vec![0];\n let b = Box::new(1);\n // sws-lint: end-hot-path\n let after = Vec::new();\n}";
        let hits = run_rule("crates/listsched/src/kernel.rs", src, hot_path_alloc);
        let lines: Vec<u32> = hits.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![4, 5, 6]);
    }
}
