//! Diagnostics and the two output renderers (human, `--json`).

use std::fmt::Write as _;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (`panic-policy`, `lock-discipline`,
    /// `float-discipline`, `hot-path-alloc`, `malformed-directive`,
    /// `unused-allow`).
    pub rule: &'static str,
    /// Path as reported (workspace-relative when walking).
    pub file: String,
    /// 1-indexed source line.
    pub line: u32,
    pub message: String,
}

impl Diagnostic {
    pub fn render_human(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Full run report.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub violations: Vec<Diagnostic>,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Stable ordering: file, then line, then rule.
    pub fn sort(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.violations {
            let _ = writeln!(out, "{}", d.render_human());
        }
        let _ = writeln!(
            out,
            "sws-lint: {} file(s) scanned, {} violation(s)",
            self.files_scanned,
            self.violations.len()
        );
        out
    }

    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"violation_count\": {},", self.violations.len());
        out.push_str("  \"violations\": [");
        for (i, d) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(d.rule),
                json_str(&d.file),
                d.line,
                json_str(&d.message)
            );
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_report_shape() {
        let mut r = Report {
            files_scanned: 2,
            violations: vec![Diagnostic {
                rule: "panic-policy",
                file: "b.rs".into(),
                line: 3,
                message: "x".into(),
            }],
        };
        r.sort();
        let j = r.render_json();
        assert!(j.contains("\"violation_count\": 1"));
        assert!(j.contains("\"rule\": \"panic-policy\""));
        assert!(j.contains("\"line\": 3"));
    }
}
