#![forbid(unsafe_code)]
//! CLI for the workspace invariant linter.
//!
//! ```text
//! sws-lint [--ci] [--json] [--root <dir>] [paths…]
//! ```
//!
//! * no paths: lint every `.rs` file under the root (skipping
//!   `target/`, `.git/`, and fixture corpora);
//! * `--ci`: require the root to be a workspace root (a `Cargo.toml`
//!   must exist) — the mode the CI gate runs;
//! * `--json`: emit the machine-readable report on stdout instead of
//!   human diagnostics.
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut ci = false;
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ci" => ci = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => {
                eprintln!("usage: sws-lint [--ci] [--json] [--root <dir>] [paths...]");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                return usage(&format!("unknown flag {flag}"));
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    if ci && !root.join("Cargo.toml").is_file() {
        eprintln!(
            "sws-lint: --ci requires a workspace root (no Cargo.toml in {}); use --root",
            root.display()
        );
        return ExitCode::from(2);
    }

    match sws_lint::run(&root, &paths) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(err) => {
            eprintln!("sws-lint: {err}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("sws-lint: {msg}");
    eprintln!("usage: sws-lint [--ci] [--json] [--root <dir>] [paths...]");
    ExitCode::from(2)
}
