//! A hand-rolled Rust tokenizer.
//!
//! The workspace builds offline, so `syn`/`proc-macro2` are not
//! available; the lint rules only need a faithful *lexical* view of the
//! source anyway. The tokenizer handles every construct that could make
//! a naive scanner misreport a rule site:
//!
//! * line comments and **nested** block comments (`/* /* */ */`);
//! * string literals with escapes, byte strings, and **raw strings**
//!   (`r"…"`, `r#"…"#`, arbitrary `#` depth, `br#"…"#`) — an
//!   `unwrap()` spelled inside any of these is text, not code;
//! * the char-literal / lifetime ambiguity (`'a'` vs `<'a>`), including
//!   escaped chars (`'\''`) and `'_'`;
//! * raw identifiers (`r#match`);
//! * numeric literals with a float/integer distinction (`1.0`, `2.`,
//!   `1e-9`, `3f64` are floats; `1`, `0xff`, `1.max(2)`'s `1`, and
//!   tuple-index `.0` are not) — the float-discipline rule keys on it.
//!
//! Every token records the 1-indexed source line it starts on; that
//! line is the currency of diagnostics and allow-directives.

/// Lexical class of a [`Tok`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (the lexer does not distinguish; rules
    /// consult [`is_keyword`] where it matters).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// A char or byte-char literal.
    CharLit,
    /// Any string literal: plain, raw, byte, raw byte.
    StrLit,
    /// Numeric literal; `float` is true for floating-point literals.
    Num { float: bool },
    /// Operator / punctuation (text holds the exact spelling).
    Punct,
    /// `(`, `[` or `{` — the byte is in the token text.
    Open,
    /// `)`, `]` or `}` — the byte is in the token text.
    Close,
    /// Line or block comment, text preserved (directives live here).
    Comment,
}

/// One token: kind, exact source text, and the 1-indexed line it
/// starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: Kind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True when this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == Kind::Ident && self.text == word
    }

    /// True when this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == Kind::Punct && self.text == p
    }

    /// True when this token opens the given bracket byte.
    pub fn opens(&self, b: char) -> bool {
        self.kind == Kind::Open && self.text.as_bytes()[0] == b as u8
    }

    /// True when this token closes the given bracket byte.
    pub fn closes(&self, b: char) -> bool {
        self.kind == Kind::Close && self.text.as_bytes()[0] == b as u8
    }
}

/// Rust keywords that can directly precede a `[` without forming an
/// index expression (`for x in [1, 2]`, `return [0; 4]`, …). The
/// panic-policy rule uses this set to tell slice indexing apart from
/// array literals.
pub fn is_keyword(word: &str) -> bool {
    matches!(
        word,
        "as" | "async"
            | "await"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
    )
}

/// Multi-character operators, longest first so greedy matching is
/// correct (`<<=` before `<<` before `<`).
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "::", "->", "=>", "&&", "||", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Tokenize `src`. The lexer never fails: malformed input degrades to
/// single-character punctuation tokens rather than aborting, so the
/// linter stays usable on work-in-progress files.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.char_indices().collect(),
        src,
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    chars: Vec<(usize, char)>,
    src: &'s str,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl<'s> Lexer<'s> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_at(&self, idx: usize) -> usize {
        self.chars
            .get(idx)
            .map(|&(b, _)| b)
            .unwrap_or(self.src.len())
    }

    /// Advance one char, counting newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(c)
    }

    fn push(&mut self, kind: Kind, start: usize, line: u32) {
        let text = self.src[self.byte_at(start)..self.byte_at(self.pos)].to_string();
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => {
                    while let Some(c) = self.peek(0) {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                    self.push(Kind::Comment, start, line);
                }
                '/' if self.peek(1) == Some('*') => {
                    self.block_comment(start, line);
                }
                'r' | 'b' => {
                    if !self.raw_or_byte_literal(start, line) {
                        self.ident(start, line);
                    }
                }
                '"' => {
                    self.bump();
                    self.string_body('"');
                    self.push(Kind::StrLit, start, line);
                }
                '\'' => self.char_or_lifetime(start, line),
                c if c.is_ascii_digit() => self.number(start, line),
                c if c == '_' || c.is_alphabetic() => self.ident(start, line),
                '(' | '[' | '{' => {
                    self.bump();
                    self.push(Kind::Open, start, line);
                }
                ')' | ']' | '}' => {
                    self.bump();
                    self.push(Kind::Close, start, line);
                }
                _ => self.punct(start, line),
            }
        }
        self.out
    }

    fn block_comment(&mut self, start: usize, line: u32) {
        // Consume `/*`, then track nesting depth.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.push(Kind::Comment, start, line);
    }

    /// Handles `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `br#"…"#`, `b'x'`.
    /// Returns false when the `r`/`b` starts a plain identifier.
    fn raw_or_byte_literal(&mut self, start: usize, line: u32) -> bool {
        let c = self.peek(0).unwrap_or('\0');
        let mut ahead = 1;
        if c == 'b' && self.peek(1) == Some('r') {
            ahead = 2;
        }
        match self.peek(ahead) {
            Some('"') | Some('#') if c == 'r' || ahead == 2 || self.peek(ahead) == Some('"') => {
                // `b"…"` (ahead=1, next is quote) or raw-string family.
                if c == 'b' && ahead == 1 && self.peek(1) == Some('"') {
                    self.bump(); // b
                    self.bump(); // "
                    self.string_body('"');
                    self.push(Kind::StrLit, start, line);
                    return true;
                }
                // Raw string or raw identifier: consume prefix chars.
                for _ in 0..ahead {
                    self.bump();
                }
                let mut hashes = 0usize;
                while self.peek(0) == Some('#') {
                    hashes += 1;
                    self.bump();
                }
                if self.peek(0) == Some('"') {
                    self.bump();
                    self.raw_string_body(hashes);
                    self.push(Kind::StrLit, start, line);
                } else if hashes == 1 && c == 'r' {
                    // `r#ident` raw identifier.
                    self.ident_continue();
                    self.push(Kind::Ident, start, line);
                } else {
                    // Stray `#`s: emit what we have as punct-ish ident.
                    self.push(Kind::Punct, start, line);
                }
                true
            }
            Some('\'') if c == 'b' && ahead == 1 => {
                self.bump(); // b
                self.bump(); // '
                self.char_body();
                self.push(Kind::CharLit, start, line);
                true
            }
            _ => false,
        }
    }

    /// Body of a non-raw string after the opening quote.
    fn string_body(&mut self, close: char) {
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == close {
                break;
            }
        }
    }

    /// Body of a raw string after the opening quote: ends at `"` + the
    /// same number of `#`s.
    fn raw_string_body(&mut self, hashes: usize) {
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    /// Body of a char literal after the opening quote.
    fn char_body(&mut self) {
        if self.peek(0) == Some('\\') {
            self.bump();
            self.bump();
        } else {
            self.bump();
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
    }

    /// `'a'` is a char literal, `'a` is a lifetime; `'\n'` is a char,
    /// `'_` is a lifetime, `'_'` is a char. The discriminator: an
    /// ident-start char followed by anything but a closing `'` means
    /// lifetime.
    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        let one = self.peek(1);
        let two = self.peek(2);
        let is_lifetime = match one {
            Some(c) if c == '_' || c.is_alphabetic() => two != Some('\''),
            _ => false,
        };
        self.bump(); // '
        if is_lifetime {
            self.ident_continue();
            self.push(Kind::Lifetime, start, line);
        } else {
            self.char_body();
            self.push(Kind::CharLit, start, line);
        }
    }

    fn ident_continue(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn ident(&mut self, start: usize, line: u32) {
        self.ident_continue();
        self.push(Kind::Ident, start, line);
    }

    fn number(&mut self, start: usize, line: u32) {
        let mut float = false;
        let hex_or_binary = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('X') | Some('b') | Some('o'));
        if hex_or_binary {
            self.bump();
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(Kind::Num { float: false }, start, line);
            return;
        }
        while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
            self.bump();
        }
        // Fractional part: `.` counts only when followed by a digit, or
        // by nothing that could continue an expression (`2.` is a float
        // literal; `1..3` is a range; `1.max(2)` is a method call).
        if self.peek(0) == Some('.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    float = true;
                    self.bump();
                    while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                        self.bump();
                    }
                }
                Some('.') => {}                                // range
                Some(c) if c == '_' || c.is_alphabetic() => {} // method/field
                _ => {
                    float = true; // trailing-dot float `2.`
                    self.bump();
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e') | Some('E')) {
            let (sign, digit) = (self.peek(1), self.peek(2));
            let exp = match sign {
                Some(c) if c.is_ascii_digit() => true,
                Some('+') | Some('-') => matches!(digit, Some(d) if d.is_ascii_digit()),
                _ => false,
            };
            if exp {
                float = true;
                self.bump();
                if matches!(self.peek(0), Some('+') | Some('-')) {
                    self.bump();
                }
                while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                    self.bump();
                }
            }
        }
        // Suffix (`f64`, `u32`, …).
        let suffix_start = self.pos;
        self.ident_continue();
        let suffix = &self.src[self.byte_at(suffix_start)..self.byte_at(self.pos)];
        if suffix.starts_with("f32") || suffix.starts_with("f64") {
            float = true;
        }
        self.push(Kind::Num { float }, start, line);
    }

    fn punct(&mut self, start: usize, line: u32) {
        let rest: String = self.chars[self.pos..self.chars.len().min(self.pos + 3)]
            .iter()
            .map(|&(_, c)| c)
            .collect();
        for op in MULTI_PUNCT {
            if rest.starts_with(op) {
                for _ in 0..op.chars().count() {
                    self.bump();
                }
                self.push(Kind::Punct, start, line);
                return;
            }
        }
        self.bump();
        self.push(Kind::Punct, start, line);
    }
}

/// Index of the previous non-comment token before `i`, if any.
pub fn prev_code(toks: &[Tok], i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| toks[j].kind != Kind::Comment)
}

/// Index of the next non-comment token after `i`, if any.
pub fn next_code(toks: &[Tok], i: usize) -> Option<usize> {
    (i + 1..toks.len()).find(|&j| toks[j].kind != Kind::Comment)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let toks = kinds("a /* x /* unwrap() */ y */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].1, "a");
        assert_eq!(toks[1].0, Kind::Comment);
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let toks = kinds(r####"let s = r#"x.unwrap() == 1.0"#; done"####);
        assert!(toks.iter().all(|t| t.0 != Kind::Ident || t.1 != "unwrap"));
        assert_eq!(toks.last().unwrap().1, "done");
    }

    #[test]
    fn raw_string_with_two_hashes_and_embedded_quote_hash() {
        let src = "r##\"inner \"# quote\"## after";
        let toks = kinds(src);
        assert_eq!(toks[0].0, Kind::StrLit);
        assert_eq!(toks[1].1, "after");
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"b"bytes" b'x' br#"raw"# tail"##);
        assert_eq!(toks[0].0, Kind::StrLit);
        assert_eq!(toks[1].0, Kind::CharLit);
        assert_eq!(toks[2].0, Kind::StrLit);
        assert_eq!(toks[3].1, "tail");
    }

    #[test]
    fn char_versus_lifetime() {
        let toks = kinds("<'a> 'a' '\\'' 'static '_ '_'");
        let k: Vec<Kind> = toks.iter().map(|t| t.0).collect();
        assert_eq!(
            k,
            vec![
                Kind::Punct,    // <
                Kind::Lifetime, // 'a
                Kind::Punct,    // >
                Kind::CharLit,  // 'a'
                Kind::CharLit,  // '\''
                Kind::Lifetime, // 'static
                Kind::Lifetime, // '_
                Kind::CharLit,  // '_'
            ]
        );
    }

    #[test]
    fn float_detection() {
        let float = |s: &str| matches!(lex(s)[0].kind, Kind::Num { float: true });
        assert!(float("1.0"));
        assert!(float("1e-9"));
        assert!(float("2.5E3"));
        assert!(float("3f64"));
        assert!(float("2."));
        assert!(!float("1"));
        assert!(!float("0xff"));
        assert!(!float("1u32"));
        // `1.max(2)`: the `1` is an integer receiving a method call.
        let toks = lex("1.max(2)");
        assert!(matches!(toks[0].kind, Kind::Num { float: false }));
        assert!(toks[2].is_ident("max"));
        // Range `1..3` keeps both ends integral.
        let toks = lex("1..3");
        assert!(matches!(toks[0].kind, Kind::Num { float: false }));
        assert!(toks[1].is_punct(".."));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("r#match r#fn plain");
        assert_eq!(toks[0].0, Kind::Ident);
        assert_eq!(toks[0].1, "r#match");
        assert_eq!(toks[1].1, "r#fn");
        assert_eq!(toks[2].1, "plain");
    }

    #[test]
    fn multi_char_operators_are_greedy() {
        let toks = kinds("a <= b == c != d >= e :: f");
        let ops: Vec<&str> = toks
            .iter()
            .filter(|t| t.0 == Kind::Punct)
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(ops, vec!["<=", "==", "!=", ">=", "::"]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb \"str\ning\" c";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 5);
    }
}
