// sws-lint: treat-as crates/core/src/fx_float.rs
//! Float fixture: comparisons against float literals / f64 consts and
//! cmp escapes are flagged; integer comparisons and ranges are not.

fn flagged(delta: f64, x: f64, y: f64) -> bool {
    let a = delta <= 2.0;
    let b = x == f64::INFINITY;
    let c = x.partial_cmp(&y).is_some();
    let d = x.total_cmp(&y).is_eq();
    let e = -1.0 < x;
    a && b && c && d && e
}

fn not_flagged(n: usize, xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    for i in 0..n.min(xs.len()) {
        if i < n {
            sum += xs.get(i).copied().unwrap_or(1.0f64.max(0.5));
        }
    }
    sum
}
