// sws-lint: treat-as crates/service/src/fx_allow.rs
//! Directive fixture: allows are line-scoped, stale allows and
//! malformed directives are violations themselves.

fn suppressed_trailing(x: Option<u32>) -> u32 {
    x.unwrap() // sws-lint: allow(panic-policy, reason = "fixture: trailing allow binds to its own line")
}

fn suppressed_standalone(x: Option<u32>) -> u32 {
    // sws-lint: allow(panic-policy, reason = "fixture: standalone allow binds to the next code line")
    x.unwrap()
}

fn not_suppressed(x: Option<u32>) -> u32 {
    // the allows above are line-scoped, so this one still fires
    x.unwrap()
}

// sws-lint: allow(panic-policy, reason = "fixture: stale, suppresses nothing")
fn clean() {}

// sws-lint: allow(panic-policy)
fn missing_reason() {}
