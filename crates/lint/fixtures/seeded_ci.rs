// sws-lint: treat-as crates/service/src/seeded_ci.rs
//! Seeded violation: the CI lint job runs the linter over this file and
//! asserts it FAILS, proving the gate can stop a real regression.

fn seeded(x: Option<u32>) -> u32 {
    x.unwrap()
}
