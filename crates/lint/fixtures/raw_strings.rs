// sws-lint: treat-as crates/service/src/fx_raw.rs
//! Lexer fixture: panic-like text inside raw strings must not fire;
//! the delimiter depth must not desync the token stream.

fn emits_docs() -> &'static str {
    r#"calling x.unwrap() then panic!("boom") inside a raw string"#
}

fn nested_hash_depth() -> &'static str {
    r##"outer r#"inner x.expect("no") "# still the same string"##
}

fn real_violation(x: Option<u32>) -> u32 {
    x.unwrap()
}
