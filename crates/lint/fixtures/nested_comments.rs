// sws-lint: treat-as crates/service/src/fx_comments.rs
//! Lexer fixture: nested block comments swallow panic sites at any
//! depth; code after the comment closes is live again.

/* outer /* inner x.unwrap() */ still commented panic!("no") */
fn live(z: Option<u32>) -> u32 {
    /* one level: y.expect("hidden") */
    z.unwrap()
}
