// sws-lint: treat-as crates/service/src/fx_lanes.rs
//! Lane-lock fixture: the per-tenant sub-queue locking design the DRR
//! queue deliberately avoids. Giving each lane its own mutex next to
//! the shared rotation lock invites an AB/BA inversion the moment one
//! path charges a deficit under the rotation lock while another drains
//! a lane before touching the rotation — the cycle below is why the
//! real `JobQueue` keeps every lane inside ONE `Mutex<Inner>`.

fn push(q: &Queue) {
    let _rotation = q.inner.lock().unwrap_or_else(PoisonError::into_inner);
    let _lane = q.lane.lock().unwrap_or_else(PoisonError::into_inner);
}

fn drain(q: &Queue) {
    let _lane = q.lane.lock().unwrap_or_else(PoisonError::into_inner);
    let _rotation = q.inner.lock().unwrap_or_else(PoisonError::into_inner);
}
