// sws-lint: treat-as crates/listsched/src/fx_hot.rs
//! Hot-path fixture: allocation calls are violations only between the
//! markers; identical calls outside are fine.

fn cold_before(n: usize) -> Vec<u32> {
    let mut v = Vec::with_capacity(n);
    v.push(0);
    v
}

// sws-lint: hot-path
fn hot(xs: &[u32], buf: &mut Vec<u32>) -> u32 {
    let v: Vec<u32> = xs.iter().copied().collect();
    let w = vec![0u32; 4];
    let b = Box::new(xs.len() as u32);
    let s = format!("{}", v.len());
    buf.push(w[0] + *b + s.len() as u32);
    buf[0]
}
// sws-lint: end-hot-path

fn cold_after() -> String {
    String::from("fine out here").to_owned()
}
