// sws-lint: treat-as crates/service/src/fx_chars.rs
//! Lexer fixture: lifetimes, loop labels, and char literals (including
//! escaped quotes) must not desync the stream.

fn soup<'a, 'b: 'a>(x: &'a str, c: char) -> bool {
    let is_quote = c == '\'' || c == '"';
    let underscore: &'_ str = x;
    'outer: for _ in 0..1 {
        break 'outer;
    }
    is_quote && matches!(c, 'a' | 'z') && !underscore.is_empty()
}

fn after_the_soup(v: Option<u8>) -> u8 {
    v.expect("lexer stayed in sync")
}
