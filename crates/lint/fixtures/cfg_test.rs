// sws-lint: treat-as crates/service/src/fx_cfg.rs
//! Region fixture: rules are silent inside #[cfg(test)] items and
//! #[test] functions; live code still fires.

fn live(v: &[u32]) -> u32 {
    v[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_freely() {
        let x: Option<u32> = None;
        x.unwrap();
        panic!("fine in tests");
    }
}

#[test]
fn item_level_test_fn(oops: Option<u32>) {
    oops.unwrap();
}
