// sws-lint: treat-as crates/service/src/fx_lock.rs
//! Lock fixture: inconsistent AB/BA ordering across functions is a
//! potential deadlock; a bare acquisition is a violation on its own.

fn ab(s: &Shared) {
    let _a = s.alpha.lock().unwrap_or_else(PoisonError::into_inner);
    let _b = s.beta.lock().unwrap_or_else(PoisonError::into_inner);
}

fn ba(s: &Shared) {
    let _b = s.beta.lock().unwrap_or_else(PoisonError::into_inner);
    let _a = s.alpha.lock().unwrap_or_else(PoisonError::into_inner);
}

fn bare(s: &Shared) {
    let _g = s.gamma.lock().unwrap();
}
