//! Fixture-corpus tests: every file under `fixtures/` carries a
//! `treat-as` directive pinning it to a rule scope and has a known,
//! exact violation set. The assertions are exact — a rule that starts
//! over- or under-reporting fails here before it reaches the CI gate.
//!
//! The workspace walker skips `fixtures/` directories, so these files
//! are only ever linted explicitly (here, and by the seeded CI step).

use sws_lint::engine::{lint_source, lock_cycle_diags, FileResult};

fn lint_fixture(name: &str) -> FileResult {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    lint_source(&format!("crates/lint/fixtures/{name}"), &src)
}

/// The violation set as sorted `(rule, line)` pairs.
fn rule_lines(result: &FileResult) -> Vec<(&'static str, u32)> {
    let mut v: Vec<(&'static str, u32)> = result.diags.iter().map(|d| (d.rule, d.line)).collect();
    v.sort();
    v
}

#[test]
fn raw_strings_hide_panic_text_but_not_real_violations() {
    let r = lint_fixture("raw_strings.rs");
    assert_eq!(rule_lines(&r), vec![("panic-policy", 14)], "{:?}", r.diags);
}

#[test]
fn nested_block_comments_swallow_panic_sites() {
    let r = lint_fixture("nested_comments.rs");
    assert_eq!(rule_lines(&r), vec![("panic-policy", 8)], "{:?}", r.diags);
}

#[test]
fn char_literals_and_lifetimes_do_not_desync_the_lexer() {
    // If the lexer misread a lifetime as an unterminated char literal it
    // would swallow the rest of the file and the expect() on line 15
    // would silently disappear — the exact assertion catches both over-
    // and under-reporting.
    let r = lint_fixture("char_lifetime.rs");
    assert_eq!(rule_lines(&r), vec![("panic-policy", 15)], "{:?}", r.diags);
}

#[test]
fn cfg_test_items_and_test_fns_are_exempt() {
    let r = lint_fixture("cfg_test.rs");
    assert_eq!(rule_lines(&r), vec![("panic-policy", 6)], "{:?}", r.diags);
}

#[test]
fn allow_directives_are_line_scoped_and_audited() {
    let r = lint_fixture("allow_scoping.rs");
    assert_eq!(
        rule_lines(&r),
        vec![
            ("malformed-directive", 22),
            ("panic-policy", 16),
            ("unused-allow", 19),
        ],
        "{:?}",
        r.diags
    );
}

#[test]
fn inconsistent_lock_order_forms_a_cycle() {
    let r = lint_fixture("lock_order.rs");
    // The bare gamma acquisition violates both disciplines on line 16;
    // the disciplined alpha/beta pairs violate nothing per-file.
    assert_eq!(
        rule_lines(&r),
        vec![("lock-discipline", 16), ("panic-policy", 16)],
        "{:?}",
        r.diags
    );
    let cycles = lock_cycle_diags(&r.lock_sequences);
    assert_eq!(cycles.len(), 1, "{cycles:?}");
    assert!(cycles[0].message.contains("fx_lock::s.alpha"));
    assert!(cycles[0].message.contains("fx_lock::s.beta"));
}

#[test]
fn per_lane_mutexes_would_invert_against_the_rotation_lock() {
    // Documents the design the DRR queue rejects: a second per-lane
    // mutex beside the rotation lock. Both acquisitions are poison-
    // recovering, so the hazard is purely the cross-function ordering
    // cycle — exactly what the graph pass exists to catch.
    let r = lint_fixture("lock_lanes.rs");
    assert_eq!(rule_lines(&r), vec![], "{:?}", r.diags);
    let cycles = lock_cycle_diags(&r.lock_sequences);
    assert_eq!(cycles.len(), 1, "{cycles:?}");
    assert!(cycles[0].message.contains("fx_lanes::q.inner"));
    assert!(cycles[0].message.contains("fx_lanes::q.lane"));
}

#[test]
fn float_rule_flags_literal_const_and_cmp_escapes_only() {
    let r = lint_fixture("float.rs");
    assert_eq!(
        rule_lines(&r),
        vec![
            ("float-discipline", 6),
            ("float-discipline", 7),
            ("float-discipline", 8),
            ("float-discipline", 9),
            ("float-discipline", 10),
        ],
        "{:?}",
        r.diags
    );
}

#[test]
fn hot_path_alloc_fires_only_between_markers() {
    let r = lint_fixture("hot_path.rs");
    assert_eq!(
        rule_lines(&r),
        vec![
            ("hot-path-alloc", 13),
            ("hot-path-alloc", 14),
            ("hot-path-alloc", 15),
            ("hot-path-alloc", 16),
        ],
        "{:?}",
        r.diags
    );
}

#[test]
fn seeded_ci_fixture_always_fails() {
    // CI runs the binary over this file and asserts a non-zero exit;
    // this test pins the violation the gate relies on.
    let r = lint_fixture("seeded_ci.rs");
    assert_eq!(rule_lines(&r), vec![("panic-policy", 6)], "{:?}", r.diags);
}

#[test]
fn diagnostics_carry_the_logical_path() {
    let r = lint_fixture("seeded_ci.rs");
    assert_eq!(r.diags[0].file, "crates/service/src/seeded_ci.rs");
}
