//! Binary search over the deadline, yielding the `(1 + ε)`-approximation.

use sws_model::cancel::CancelProbe;
use sws_model::error::ModelError;
use sws_model::schedule::Assignment;
use sws_model::Instance;

use crate::dual::{dual_test, DualResult};

/// Number of bisection steps of the deadline search. Each step halves the
/// bracket `[LB, 2·LB]`, so 40 steps reduce the residual gap far below the
/// floating-point tolerances used elsewhere.
const BISECTION_STEPS: usize = 40;

/// Outcome of a PTAS run.
#[derive(Debug, Clone)]
pub struct PtasOutcome {
    /// The produced assignment.
    pub assignment: Assignment,
    /// The deadline accepted by the last successful dual test.
    pub deadline: f64,
    /// The accuracy parameter the schedule was built with.
    pub eps: f64,
    /// Whether every accepted dual test used the exact configuration DP
    /// (if `false`, an FFD fallback was used at least once and the formal
    /// `(1 + ε)` guarantee is replaced by the FFD guarantee).
    pub exact_packing: bool,
}

impl PtasOutcome {
    /// Upper bound certified for the produced schedule: `(1 + ε) ·
    /// deadline`, where the deadline is itself at most (a hair above) the
    /// optimum.
    pub fn certified_value(&self) -> f64 {
        (1.0 + self.eps) * self.deadline
    }
}

/// Whether a PTAS run at accuracy `eps` on these weights can afford the
/// exact configuration DP — the gate the portfolio layer uses before
/// promising an `ε`-optimal schedule.
///
/// The rounding (and hence the DP work) depends on the deadline under
/// test; the deadline search stays within `[LB, 2·LB]` and the work
/// estimate is largest at the *smallest* deadline (smaller `d` makes more
/// jobs "large"), so the estimate at `d = LB` bounds every dual test of
/// the search. When it exceeds [`crate::dual::DP_WORK_LIMIT`] the packing
/// would fall back to FFD and the strict `(1 + ε)` guarantee would be
/// lost, so a guarantee-demanding caller must not route here.
pub fn dp_work_affordable(weights: &[f64], m: usize, eps: f64) -> bool {
    dp_work_estimate_for(weights, m, eps) <= crate::dual::DP_WORK_LIMIT
}

/// The configuration-DP work estimate [`dp_work_affordable`] gates on:
/// `states × configs × classes` at the most conservative deadline
/// `d = LB` (see [`dp_work_affordable`] for why that deadline bounds
/// every dual test of the search). Exposed so admission layers can use
/// the *value* — not just the gate's verdict — as the pre-dispatch cost
/// estimate of an ε-optimal request. `0` for empty or zero-work inputs.
pub fn dp_work_estimate_for(weights: &[f64], m: usize, eps: f64) -> usize {
    assert!(m > 0, "need at least one machine");
    let total: f64 = weights.iter().sum();
    let max_w = weights.iter().copied().fold(0.0, f64::max);
    let lb = (total / m as f64).max(max_w);
    if weights.is_empty() || lb == 0.0 {
        return 0;
    }
    crate::rounding::Rounding::new(weights, lb, eps).dp_work_estimate()
}

/// Runs the Hochbaum–Shmoys PTAS on arbitrary weights: returns an
/// assignment whose maximum per-machine weight is at most
/// `(1 + ε)·OPT` (up to the bisection residual).
pub fn ptas_schedule(weights: &[f64], m: usize, eps: f64) -> PtasOutcome {
    ptas_schedule_probed(weights, m, eps, &CancelProbe::never())
        .expect("an unarmed probe cannot interrupt the search")
}

/// [`ptas_schedule`] with a cooperative cancellation probe, polled before
/// every dual test (each bisection step runs exactly one). A tripped
/// probe stops the search with `ModelError::Interrupted`.
pub fn ptas_schedule_probed(
    weights: &[f64],
    m: usize,
    eps: f64,
    probe: &CancelProbe,
) -> Result<PtasOutcome, ModelError> {
    assert!(m > 0, "need at least one machine");
    assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0, 1)");
    let total: f64 = weights.iter().sum();
    let max_w = weights.iter().copied().fold(0.0, f64::max);
    let lb = (total / m as f64).max(max_w);

    if weights.is_empty() || lb == 0.0 {
        return Ok(PtasOutcome {
            assignment: Assignment::zeroed(weights.len(), m).expect("m > 0"),
            deadline: 0.0,
            eps,
            exact_packing: true,
        });
    }

    // Graham's bound guarantees a schedule of makespan at most 2·LB
    // exists, and the dual test at d = 2·LB always succeeds (every machine
    // can absorb the average load plus one largest job). A defensive
    // fallback below keeps the function total even if that reasoning were
    // ever violated numerically.
    let mut lo = lb;
    let mut hi = 2.0 * lb;
    let mut best: Option<(f64, DualResult)> = None;

    // Make sure the upper end is accepted before bisecting.
    probe.poll()?;
    match dual_test(weights, m, hi, eps) {
        Some(res) => best = Some((hi, res)),
        None => {
            // Extremely defensive: widen the bracket (cannot happen for a
            // correct dual test, but a safe guard beats a panic).
            hi = 4.0 * lb;
            if let Some(res) = dual_test(weights, m, hi, eps) {
                best = Some((hi, res));
            }
        }
    }

    for _ in 0..BISECTION_STEPS {
        probe.poll()?;
        let mid = 0.5 * (lo + hi);
        match dual_test(weights, m, mid, eps) {
            Some(res) => {
                hi = mid;
                best = Some((mid, res));
            }
            None => lo = mid,
        }
    }

    Ok(match best {
        Some((deadline, res)) => PtasOutcome {
            assignment: res.assignment,
            deadline,
            eps,
            exact_packing: res.exact_packing,
        },
        None => {
            // Last-resort fallback: LPT (never triggered by a sound dual
            // test, but keeps the function total).
            let order = {
                let mut o: Vec<usize> = (0..weights.len()).collect();
                o.sort_by(|&a, &b| sws_model::numeric::total_cmp(weights[b], weights[a]));
                o
            };
            PtasOutcome {
                assignment: sws_listsched::list_schedule(weights, m, &order),
                deadline: 2.0 * lb,
                eps,
                exact_packing: false,
            }
        }
    })
}

/// PTAS for the makespan objective of an instance:
/// `Cmax ≤ (1 + ε)·C*max`.
pub fn ptas_cmax(inst: &Instance, eps: f64) -> PtasOutcome {
    let weights: Vec<f64> = (0..inst.n()).map(|i| inst.p(i)).collect();
    ptas_schedule(&weights, inst.m(), eps)
}

/// [`ptas_cmax`] with a cooperative cancellation probe.
pub fn ptas_cmax_probed(
    inst: &Instance,
    eps: f64,
    probe: &CancelProbe,
) -> Result<PtasOutcome, ModelError> {
    let weights: Vec<f64> = (0..inst.n()).map(|i| inst.p(i)).collect();
    ptas_schedule_probed(&weights, inst.m(), eps, probe)
}

/// PTAS for the memory objective of an instance:
/// `Mmax ≤ (1 + ε)·M*max`.
pub fn ptas_mmax(inst: &Instance, eps: f64) -> PtasOutcome {
    let weights: Vec<f64> = (0..inst.n()).map(|i| inst.s(i)).collect();
    ptas_schedule(&weights, inst.m(), eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::objectives::{cmax_of_assignment, mmax_of_assignment};
    use sws_model::validate::validate_assignment;

    #[test]
    fn finds_the_optimal_split_on_an_easy_instance() {
        // OPT = 10 on two machines (6+4 and 5+5).
        let inst = Instance::from_ps(&[6.0, 4.0, 5.0, 5.0], &[1.0; 4], 2).unwrap();
        let out = ptas_cmax(&inst, 0.2);
        assert!(validate_assignment(&inst, &out.assignment, None).is_ok());
        let cmax = cmax_of_assignment(inst.tasks(), &out.assignment);
        assert!(cmax <= (1.0 + 0.2) * 10.0 + 1e-6);
    }

    #[test]
    fn respects_the_one_plus_eps_bound_against_a_known_optimum() {
        // 9 unit jobs on 3 machines: OPT = 3.
        let inst = Instance::from_ps(&[1.0; 9], &[1.0; 9], 3).unwrap();
        for &eps in &[0.1, 0.25, 0.5] {
            let out = ptas_cmax(&inst, eps);
            let cmax = cmax_of_assignment(inst.tasks(), &out.assignment);
            assert!(
                cmax <= (1.0 + eps) * 3.0 + 1e-6,
                "eps = {eps}: cmax = {cmax}"
            );
        }
    }

    #[test]
    fn memory_variant_optimizes_storage() {
        let inst = Instance::from_ps(&[1.0; 4], &[6.0, 4.0, 5.0, 5.0], 2).unwrap();
        let out = ptas_mmax(&inst, 0.2);
        let mmax = mmax_of_assignment(inst.tasks(), &out.assignment);
        assert!(mmax <= 1.2 * 10.0 + 1e-6);
    }

    #[test]
    fn deadline_converges_close_to_the_optimum() {
        let inst = Instance::from_ps(&[3.0, 3.0, 3.0, 3.0], &[1.0; 4], 2).unwrap();
        let out = ptas_cmax(&inst, 0.25);
        // OPT = 6; the accepted deadline cannot be below it and should be
        // close to it after bisection.
        assert!(out.deadline >= 6.0 - 1e-6);
        assert!(out.deadline <= 6.0 * (1.0 + 1e-6) + 1e-3);
    }

    #[test]
    fn empty_and_zero_instances_are_handled() {
        let inst = Instance::from_ps(&[], &[], 2).unwrap();
        let out = ptas_cmax(&inst, 0.3);
        assert_eq!(out.assignment.n(), 0);
        let zero = Instance::from_ps(&[0.0, 0.0], &[0.0, 0.0], 2).unwrap();
        let out = ptas_cmax(&zero, 0.3);
        assert_eq!(out.assignment.n(), 2);
    }

    #[test]
    fn tighter_eps_never_gives_a_worse_certified_value() {
        let inst = Instance::from_ps(&[7.0, 9.0, 2.0, 4.0, 6.0, 1.0, 8.0, 5.0, 3.0], &[1.0; 9], 3)
            .unwrap();
        let loose = ptas_cmax(&inst, 0.5);
        let tight = ptas_cmax(&inst, 0.2);
        let loose_val = cmax_of_assignment(inst.tasks(), &loose.assignment);
        let tight_val = cmax_of_assignment(inst.tasks(), &tight.assignment);
        // The tighter run must respect its own (better) bound; both must
        // respect the loose bound.
        let lb = sws_model::bounds::cmax_lower_bound(inst.tasks(), 3);
        assert!(tight_val <= (1.0 + 0.2) * lb * (1.0 + 1e-6) + 1e-6);
        assert!(loose_val <= (1.0 + 0.5) * lb * (1.0 + 1e-6) + 1e-6);
    }
}
