//! The dual-approximation test: "is there a schedule of makespan at most
//! `(1 + ε)·d`?"

use sws_model::schedule::Assignment;

use crate::config_dp::{pack_large_ffd, pack_large_min_bins};
use crate::rounding::Rounding;

/// Above this estimated DP work (states × configurations × classes, see
/// [`Rounding::dp_work_estimate`]) the packing falls back to FFD (the
/// guarantee then degrades gracefully; callers are told through
/// [`crate::search::PtasOutcome::exact_packing`]). The estimate is
/// always at least the raw state-space size, so this single gate
/// subsumes the state-space cap this module used to apply — that cap
/// alone admitted regimes whose BFS-layer × configuration product ran
/// for hours.
pub const DP_WORK_LIMIT: usize = 2_000_000;

/// Result of one dual test.
#[derive(Debug, Clone)]
pub struct DualResult {
    /// The produced assignment.
    pub assignment: Assignment,
    /// Whether the large jobs were packed by the exact configuration DP
    /// (`true`) or by the FFD fallback (`false`).
    pub exact_packing: bool,
}

/// Tries to build a schedule of makespan at most `(1 + ε)·d` for the given
/// weights on `m` machines. Returns `None` when the test certifies that no
/// schedule of makespan `d` exists (hence `d < OPT`).
pub fn dual_test(weights: &[f64], m: usize, d: f64, eps: f64) -> Option<DualResult> {
    assert!(m > 0, "need at least one machine");
    let r = Rounding::new(weights, d, eps);

    // Pack the large jobs into at most m bins of (rounded) capacity d.
    let (bins, exact_packing) = if r.dp_work_estimate() <= DP_WORK_LIMIT {
        match pack_large_min_bins(&r, m) {
            Some(b) => (b, true),
            None => return None,
        }
    } else {
        // FFD on the true weights with capacity (1+eps)·d: if even this
        // relaxed packing fails, reject the deadline. (FFD never uses more
        // than (11/9)OPT + 1 bins, so rejections here are still sound for
        // the binary search in the sense that they only make the final
        // deadline slightly larger.)
        match pack_large_ffd(weights, &r, d * (1.0 + eps), m) {
            Some(b) => (b, false),
            None => return None,
        }
    };

    let mut asg = Assignment::zeroed(weights.len(), m).expect("m > 0");
    let mut load = vec![0.0f64; m];
    for (q, bin) in bins.iter().enumerate() {
        for &job in bin {
            asg.assign(job, q)
                .expect("q < m because at most m bins were used");
            load[q] += weights[job];
        }
    }

    // Greedily add the small jobs: always to the machine with the smallest
    // load, but only machines whose load is still at most d may receive
    // new work. If every machine exceeds d the total volume proves d < OPT.
    for &job in &r.small {
        let q = (0..m)
            .min_by(|&a, &b| sws_model::numeric::total_cmp(load[a], load[b]))
            .expect("m > 0");
        if load[q] > d + 1e-12 {
            return None;
        }
        asg.assign(job, q).expect("q < m");
        load[q] += weights[job];
    }

    Some(DualResult {
        assignment: asg,
        exact_packing,
    })
}

/// The makespan bound certified by a successful dual test: `(1 + ε)·d`.
pub fn certified_makespan(d: f64, eps: f64) -> f64 {
    (1.0 + eps) * d
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::objectives::cmax_of_assignment;
    use sws_model::task::TaskSet;

    fn makespan(weights: &[f64], asg: &Assignment) -> f64 {
        let tasks = TaskSet::from_ps(weights, &vec![0.0; weights.len()]).unwrap();
        cmax_of_assignment(&tasks, asg)
    }

    #[test]
    fn accepts_a_feasible_deadline_and_respects_the_bound() {
        let weights = [3.0, 3.0, 2.0, 2.0, 1.0, 1.0];
        // OPT on 2 machines is 6.
        let res = dual_test(&weights, 2, 6.0, 0.25).expect("6 is feasible");
        assert!(res.exact_packing);
        assert!(makespan(&weights, &res.assignment) <= certified_makespan(6.0, 0.25) + 1e-9);
    }

    #[test]
    fn rejects_an_infeasible_deadline() {
        let weights = [4.0, 4.0, 4.0];
        // Two machines cannot reach makespan 4 with three jobs of size 4.
        assert!(dual_test(&weights, 2, 4.0, 0.25).is_none());
        assert!(dual_test(&weights, 2, 8.0, 0.25).is_some());
    }

    #[test]
    fn all_small_jobs_are_spread_evenly() {
        let weights = [0.5; 8];
        let res = dual_test(&weights, 4, 1.0, 0.5).expect("feasible");
        let ms = makespan(&weights, &res.assignment);
        assert!((ms - 1.0).abs() < 1e-9);
    }

    #[test]
    fn certified_makespan_formula() {
        assert!((certified_makespan(10.0, 0.2) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn single_machine_always_accepts_total_work() {
        let weights = [1.0, 2.0, 3.0];
        let res = dual_test(&weights, 1, 6.0, 0.5).expect("total work fits");
        assert!((makespan(&weights, &res.assignment) - 6.0).abs() < 1e-9);
    }
}
