//! Minimum-bin packing of the rounded large jobs by a dynamic program
//! over machine configurations.
//!
//! A *configuration* is a multiset of large-job size classes that fits in
//! one bin of capacity `d` (at most `⌊1/ε⌋` jobs). The DP searches, by
//! breadth-first layers over residual class counts, the smallest number of
//! configurations (bins) whose union covers every large job. This is the
//! standard Hochbaum–Shmoys construction; the state space is
//! `Π_j (n_j + 1)` which is polynomial for fixed `ε`.

use std::collections::HashMap;

use crate::rounding::Rounding;

/// A single-bin configuration: how many jobs of each size class it holds.
pub type Config = Vec<u16>;

/// Enumerates every feasible bin configuration (including the empty one is
/// excluded): `Σ c_j ≤ max_per_bin`, `Σ c_j · size_j ≤ capacity`,
/// `c_j ≤ counts_j`.
pub fn enumerate_configs(r: &Rounding, capacity: f64) -> Vec<Config> {
    let k = r.class_count();
    let mut configs = Vec::new();
    let mut current: Config = vec![0; k];
    fn recurse(
        r: &Rounding,
        capacity: f64,
        class: usize,
        used: usize,
        load: f64,
        current: &mut Config,
        out: &mut Vec<Config>,
    ) {
        if class == r.class_count() {
            if current.iter().any(|&c| c > 0) {
                out.push(current.clone());
            }
            return;
        }
        let max_count = r.counts[class]
            .min(r.max_per_bin - used)
            .min(if r.sizes[class] > 0.0 {
                ((capacity - load) / r.sizes[class]).floor().max(0.0) as usize
            } else {
                r.counts[class]
            });
        for c in 0..=max_count {
            current[class] = c as u16;
            recurse(
                r,
                capacity,
                class + 1,
                used + c,
                load + c as f64 * r.sizes[class],
                current,
                out,
            );
        }
        current[class] = 0;
    }
    if k > 0 {
        recurse(r, capacity, 0, 0, 0.0, &mut current, &mut configs);
    }
    configs
}

/// Packs the large jobs of `r` into the minimum number of bins of capacity
/// `r.deadline` (using rounded sizes). Returns, for each bin, the list of
/// *original job indices* it holds, or `None` when more than `max_bins`
/// bins are required.
pub fn pack_large_min_bins(r: &Rounding, max_bins: usize) -> Option<Vec<Vec<usize>>> {
    if r.large.is_empty() {
        return Some(Vec::new());
    }
    // A single large job wider than the capacity can never be packed.
    if r.sizes.iter().any(|&s| s > r.deadline + 1e-12) {
        return None;
    }
    let configs = enumerate_configs(r, r.deadline);
    if configs.is_empty() {
        return None;
    }
    let initial: Config = r.counts.iter().map(|&c| c as u16).collect();
    let zero: Config = vec![0; r.class_count()];

    // Breadth-first search by number of bins used.
    let mut parent: HashMap<Config, (Config, usize)> = HashMap::new();
    let mut frontier = vec![initial.clone()];
    let mut visited: HashMap<Config, usize> = HashMap::new();
    visited.insert(initial.clone(), 0);
    let mut bins_used = 0usize;

    'outer: while !frontier.is_empty() {
        if visited.contains_key(&zero) {
            break;
        }
        bins_used += 1;
        if bins_used > max_bins {
            return None;
        }
        let mut next = Vec::new();
        for state in frontier {
            for (ci, cfg) in configs.iter().enumerate() {
                if cfg.iter().zip(state.iter()).all(|(&c, &s)| c <= s) {
                    let new_state: Config =
                        state.iter().zip(cfg.iter()).map(|(&s, &c)| s - c).collect();
                    if !visited.contains_key(&new_state) {
                        visited.insert(new_state.clone(), bins_used);
                        parent.insert(new_state.clone(), (state.clone(), ci));
                        if new_state == zero {
                            next.push(new_state);
                            break 'outer;
                        }
                        next.push(new_state);
                    }
                }
            }
        }
        frontier = next;
    }

    if !visited.contains_key(&zero) {
        return None;
    }

    // Reconstruct the chosen configurations.
    let mut chosen: Vec<usize> = Vec::new();
    let mut cursor = zero;
    while cursor != initial {
        let (prev, ci) = parent.get(&cursor).expect("path exists").clone();
        chosen.push(ci);
        cursor = prev;
    }

    // Distribute actual job indices to bins according to the chosen
    // configurations: jobs of each class are handed out in order.
    let mut jobs_by_class: Vec<Vec<usize>> = vec![Vec::new(); r.class_count()];
    for (k, &job) in r.large.iter().enumerate() {
        jobs_by_class[r.size_class[k]].push(job);
    }
    let mut next_in_class = vec![0usize; r.class_count()];
    let mut bins = Vec::with_capacity(chosen.len());
    for &ci in &chosen {
        let cfg = &configs[ci];
        let mut bin = Vec::new();
        for (class, &cnt) in cfg.iter().enumerate() {
            for _ in 0..cnt {
                bin.push(jobs_by_class[class][next_in_class[class]]);
                next_in_class[class] += 1;
            }
        }
        bins.push(bin);
    }
    Some(bins)
}

/// First Fit Decreasing fallback: packs the large jobs by their *true*
/// weights into bins of capacity `capacity`, using at most `max_bins`
/// bins. Used when the configuration state space is too large for the DP.
pub fn pack_large_ffd(
    weights: &[f64],
    r: &Rounding,
    capacity: f64,
    max_bins: usize,
) -> Option<Vec<Vec<usize>>> {
    let mut jobs: Vec<usize> = r.large.clone();
    jobs.sort_by(|&a, &b| sws_model::numeric::total_cmp(weights[b], weights[a]));
    let mut bins: Vec<Vec<usize>> = Vec::new();
    let mut loads: Vec<f64> = Vec::new();
    for job in jobs {
        let mut placed = false;
        for (b, load) in loads.iter_mut().enumerate() {
            if *load + weights[job] <= capacity + 1e-12 {
                *load += weights[job];
                bins[b].push(job);
                placed = true;
                break;
            }
        }
        if !placed {
            if bins.len() == max_bins {
                return None;
            }
            bins.push(vec![job]);
            loads.push(weights[job]);
        }
    }
    Some(bins)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_exactly_the_feasible_configs() {
        // eps = 0.3, d = 5: threshold 1.5, so both the 2.0 jobs and the
        // 3.0 job are large. Rounded sizes: 1.8 (2 jobs) and 2.7 (1 job);
        // max_per_bin = 3.
        let weights = [2.0, 2.0, 3.0];
        let r = Rounding::new(&weights, 5.0, 0.3);
        let cfgs = enumerate_configs(&r, 5.0);
        // Feasible non-empty configs: (1,0), (2,0), (0,1), (1,1).
        assert_eq!(cfgs.len(), 4);
        assert!(cfgs.contains(&vec![1, 1]));
        assert!(!cfgs.contains(&vec![2, 1])); // load 6.3 exceeds the capacity
    }

    #[test]
    fn min_bins_for_a_perfect_fit() {
        // Four jobs of size 2 into bins of capacity 4 -> 2 bins
        // (eps = 0.4 keeps the 2.0 jobs above the large threshold 1.6).
        let weights = [2.0, 2.0, 2.0, 2.0];
        let r = Rounding::new(&weights, 4.0, 0.4);
        let bins = pack_large_min_bins(&r, 10).unwrap();
        assert_eq!(bins.len(), 2);
        let mut all: Vec<usize> = bins.into_iter().flatten().collect();
        all.sort();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bin_limit_is_respected() {
        let weights = [2.0, 2.0, 2.0, 2.0];
        let r = Rounding::new(&weights, 4.0, 0.4);
        assert!(pack_large_min_bins(&r, 1).is_none());
        assert!(pack_large_min_bins(&r, 2).is_some());
    }

    #[test]
    fn oversized_job_is_unpackable() {
        let weights = [5.0, 1.0];
        let r = Rounding::new(&weights, 4.0, 0.5);
        assert!(pack_large_min_bins(&r, 10).is_none());
    }

    #[test]
    fn no_large_jobs_means_zero_bins() {
        let weights = [0.1, 0.1];
        let r = Rounding::new(&weights, 10.0, 0.5);
        assert_eq!(pack_large_min_bins(&r, 3).unwrap().len(), 0);
    }

    #[test]
    fn dp_beats_or_matches_ffd() {
        // A classical case where FFD wastes a bin: sizes 4,4,4,6,6,6 with
        // capacity 10 -> optimal 3 bins (4+6 each), FFD also finds 3 here;
        // use a harder mix: 5,5,4,4,3,3 capacity 12 -> optimal 2 bins
        // (5+4+3 twice).
        let weights = [5.0, 5.0, 4.0, 4.0, 3.0, 3.0];
        let r = Rounding::new(&weights, 12.0, 0.25);
        let dp = pack_large_min_bins(&r, 10).unwrap();
        assert_eq!(dp.len(), 2);
        let ffd = pack_large_ffd(&weights, &r, 12.0, 10).unwrap();
        assert!(dp.len() <= ffd.len());
    }

    #[test]
    fn reconstruction_covers_each_large_job_exactly_once() {
        let weights = [3.0, 2.5, 2.0, 2.0, 3.5, 0.1];
        let r = Rounding::new(&weights, 6.0, 0.3);
        let bins = pack_large_min_bins(&r, 10).unwrap();
        let mut seen: Vec<usize> = bins.into_iter().flatten().collect();
        seen.sort();
        assert_eq!(seen, r.large);
    }

    #[test]
    fn ffd_fallback_respects_capacity_and_limit() {
        let weights = [3.0, 3.0, 3.0, 3.0];
        let r = Rounding::new(&weights, 6.0, 0.4);
        let bins = pack_large_ffd(&weights, &r, 6.0, 2).unwrap();
        assert_eq!(bins.len(), 2);
        assert!(pack_large_ffd(&weights, &r, 6.0, 1).is_none());
    }
}
