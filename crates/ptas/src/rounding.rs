//! Large/small job classification and size rounding for the dual test.

/// The classification of the jobs for a guessed deadline `d` and accuracy
/// `ε`.
#[derive(Debug, Clone)]
pub struct Rounding {
    /// The guessed deadline.
    pub deadline: f64,
    /// The accuracy parameter.
    pub eps: f64,
    /// Indices of the large jobs (`w_i > ε·d`).
    pub large: Vec<usize>,
    /// Indices of the small jobs (`w_i ≤ ε·d`).
    pub small: Vec<usize>,
    /// Distinct rounded sizes of the large jobs, ascending.
    pub sizes: Vec<f64>,
    /// For each large job (parallel to `large`), the index into `sizes` of
    /// its rounded size.
    pub size_class: Vec<usize>,
    /// Number of large jobs in each size class.
    pub counts: Vec<usize>,
    /// Maximum number of large jobs that can share a machine, `⌊1/ε⌋`
    /// (each large job exceeds `ε·d`, the bin capacity is `d`).
    pub max_per_bin: usize,
}

impl Rounding {
    /// Classifies and rounds the job weights for deadline `d`.
    ///
    /// Rounding: each large weight is rounded *down* to the nearest
    /// multiple of `ε²·d`. A bin of rounded capacity `d` then corresponds
    /// to a true load of at most `d·(1 + ε)` because a bin holds at most
    /// `1/ε` large jobs and each contributes at most `ε²·d` of rounding
    /// error.
    pub fn new(weights: &[f64], deadline: f64, eps: f64) -> Rounding {
        assert!(deadline > 0.0, "deadline must be positive");
        assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0, 1)");
        let threshold = eps * deadline;
        let quantum = eps * eps * deadline;
        let mut large = Vec::new();
        let mut small = Vec::new();
        for (i, &w) in weights.iter().enumerate() {
            if w > threshold {
                large.push(i);
            } else {
                small.push(i);
            }
        }
        // Rounded size of a large job, as an integer number of quanta to
        // keep the size classes exact.
        let quanta_of = |w: f64| -> u64 { (w / quantum).floor() as u64 };
        let mut distinct: Vec<u64> = large.iter().map(|&i| quanta_of(weights[i])).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let sizes: Vec<f64> = distinct.iter().map(|&q| q as f64 * quantum).collect();
        let size_class: Vec<usize> = large
            .iter()
            .map(|&i| {
                let q = quanta_of(weights[i]);
                distinct
                    .binary_search(&q)
                    .expect("class exists by construction")
            })
            .collect();
        let mut counts = vec![0usize; sizes.len()];
        for &c in &size_class {
            counts[c] += 1;
        }
        let max_per_bin = (1.0 / eps).floor() as usize;
        Rounding {
            deadline,
            eps,
            large,
            small,
            sizes,
            size_class,
            counts,
            max_per_bin,
        }
    }

    /// Number of distinct large-job size classes.
    pub fn class_count(&self) -> usize {
        self.sizes.len()
    }

    /// Number of large jobs.
    pub fn large_count(&self) -> usize {
        self.large.len()
    }

    /// Estimated size of the configuration-DP state space,
    /// `Π_j (counts_j + 1)`, saturating at `usize::MAX`.
    pub fn state_space(&self) -> usize {
        self.counts
            .iter()
            .fold(1usize, |acc, &c| acc.saturating_mul(c + 1))
    }

    /// Upper bound on the number of single-bin configurations the DP may
    /// enumerate, `Π_j (min(counts_j, max_per_bin) + 1)`, saturating.
    pub fn config_count_bound(&self) -> usize {
        self.counts.iter().fold(1usize, |acc, &c| {
            acc.saturating_mul(c.min(self.max_per_bin) + 1)
        })
    }

    /// Estimated total work of the min-bin configuration DP: every BFS
    /// layer scans `visited states × configurations` pairs, each costing
    /// `O(class_count)`. The state-space size alone badly underestimates
    /// this product in middle regimes (≈10⁶ states × ≈10⁴ configurations
    /// is far beyond interactive), so the FFD-fallback decision gates on
    /// this estimate as well.
    pub fn dp_work_estimate(&self) -> usize {
        self.state_space()
            .saturating_mul(self.config_count_bound())
            .saturating_mul(self.class_count().max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_splits_at_eps_d() {
        let weights = [0.4, 1.0, 2.0, 0.5, 3.0];
        let r = Rounding::new(&weights, 4.0, 0.25);
        // threshold = 1.0: jobs strictly above 1.0 are large.
        assert_eq!(r.large, vec![2, 4]);
        assert_eq!(r.small, vec![0, 1, 3]);
        assert_eq!(r.max_per_bin, 4);
    }

    #[test]
    fn rounding_is_downward_and_groups_close_sizes() {
        // quantum = eps^2 * d = 0.25; weights 1.05 and 1.2 both round to 1.0.
        let weights = [1.05, 1.2, 2.3];
        let r = Rounding::new(&weights, 4.0, 0.25);
        assert_eq!(r.class_count(), 2);
        assert!((r.sizes[0] - 1.0).abs() < 1e-12);
        assert!((r.sizes[1] - 2.25).abs() < 1e-12);
        assert_eq!(r.counts, vec![2, 1]);
        // Rounded size never exceeds the true size.
        for (k, &job) in r.large.iter().enumerate() {
            assert!(r.sizes[r.size_class[k]] <= weights[job] + 1e-12);
        }
    }

    #[test]
    fn all_small_jobs_yield_empty_classes() {
        let weights = [0.1, 0.2, 0.3];
        let r = Rounding::new(&weights, 10.0, 0.5);
        assert!(r.large.is_empty());
        assert_eq!(r.class_count(), 0);
        assert_eq!(r.state_space(), 1);
    }

    #[test]
    fn state_space_is_product_of_counts_plus_one() {
        let weights = [2.0, 2.0, 3.0, 3.0, 3.0];
        // eps = 0.4, d = 4: threshold 1.6 so every job is large; the 2.0
        // jobs and 3.0 jobs fall into two distinct rounded classes.
        let r = Rounding::new(&weights, 4.0, 0.4);
        // classes: {2 jobs, 3 jobs} -> (2+1)*(3+1) = 12.
        assert_eq!(r.state_space(), 12);
    }

    #[test]
    #[should_panic]
    fn invalid_eps_is_rejected() {
        let _ = Rounding::new(&[1.0], 1.0, 1.5);
    }
}
