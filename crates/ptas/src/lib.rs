//! # sws-ptas
//!
//! Hochbaum–Shmoys dual-approximation PTAS for `P ∥ Cmax`
//! (*Using dual approximation algorithms for scheduling problems*, JACM
//! 1987) — the "known PTAS" that Corollary 1 of *Scheduling with Storage
//! Constraints* plugs into SBO∆ to obtain the
//! `(1 + ∆ + ε, 1 + 1/∆ + ε)` family of algorithms.
//!
//! The scheme answers the dual question "can the jobs be scheduled with
//! makespan at most `(1 + ε)·d`?" for a guessed deadline `d`:
//!
//! 1. jobs larger than `ε·d` are *large*; their sizes are rounded down to
//!    multiples of `ε²·d`, leaving at most `⌈1/ε²⌉` distinct sizes with at
//!    most `⌊1/ε⌋` large jobs per machine ([`rounding`]);
//! 2. the rounded large jobs are packed into the minimum number of bins of
//!    capacity `d` by a dynamic program over machine configurations
//!    ([`config_dp`]); if more than `m` bins are needed, no schedule of
//!    makespan `d` exists;
//! 3. small jobs are added greedily to machines whose load is below `d`
//!    ([`dual`]);
//! 4. a binary search over `d ∈ [LB, 2·LB]` finds the smallest deadline
//!    the dual test accepts ([`search`]), yielding a schedule of makespan
//!    at most `(1 + ε)·C*max`.
//!
//! Because makespan and cumulative memory are interchangeable objectives
//! on independent tasks, [`search::ptas_mmax`] runs the same machinery on
//! the storage requirements.
//!
//! For inputs whose configuration space would be unreasonably large the
//! packing step falls back to First Fit Decreasing; the fallback is
//! reported in the returned [`search::PtasOutcome`] so callers (and the
//! experiment harness) know when the strict `(1+ε)` guarantee is replaced
//! by the FFD guarantee.

#![forbid(unsafe_code)]

pub mod config_dp;
pub mod dual;
pub mod rounding;
pub mod search;

pub use dual::DP_WORK_LIMIT;
pub use search::{
    dp_work_affordable, dp_work_estimate_for, ptas_cmax, ptas_cmax_probed, ptas_mmax,
    ptas_schedule, ptas_schedule_probed, PtasOutcome,
};
