//! Property-based tests of the Hochbaum–Shmoys dual-approximation PTAS:
//! the produced schedules are feasible, respect the `(1 + ε)` bound
//! against an exact optimum on small instances, and the internal rounding
//! and dual-test machinery behaves consistently.

use proptest::collection::vec;
use proptest::prelude::*;

use sws_model::bounds::cmax_lower_bound;
use sws_model::objectives::{cmax_of_assignment, mmax_of_assignment};
use sws_model::validate::validate_assignment;
use sws_model::Instance;
use sws_ptas::dual::{certified_makespan, dual_test};
use sws_ptas::rounding::Rounding;
use sws_ptas::{ptas_cmax, ptas_mmax, ptas_schedule};

/// Exhaustive optimal makespan for tiny weight vectors.
fn brute_force_cmax(weights: &[f64], m: usize) -> f64 {
    fn recurse(weights: &[f64], k: usize, loads: &mut Vec<f64>, best: &mut f64) {
        if k == weights.len() {
            *best = best.min(loads.iter().cloned().fold(0.0, f64::max));
            return;
        }
        if loads.iter().cloned().fold(0.0, f64::max) >= *best {
            return;
        }
        for q in 0..loads.len() {
            loads[q] += weights[k];
            recurse(weights, k + 1, loads, best);
            loads[q] -= weights[k];
            if k == 0 {
                break;
            }
        }
    }
    let mut loads = vec![0.0; m];
    let mut best = f64::INFINITY;
    recurse(weights, 0, &mut loads, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The PTAS always produces a complete, valid assignment whose
    /// makespan is no better than the Graham lower bound and no worse than
    /// its own certified value (up to the documented FFD fallback).
    #[test]
    fn ptas_output_is_feasible_and_internally_consistent(
        p in vec(0.1f64..50.0, 1..40),
        m in 1usize..6,
        eps in 0.1f64..0.6,
    ) {
        let s: Vec<f64> = p.iter().map(|x| x * 0.5 + 1.0).collect();
        let inst = Instance::from_ps(&p, &s, m).unwrap();
        let out = ptas_cmax(&inst, eps);
        validate_assignment(&inst, &out.assignment, None).unwrap();
        let cmax = cmax_of_assignment(inst.tasks(), &out.assignment);
        let lb = cmax_lower_bound(inst.tasks(), m);
        prop_assert!(cmax + 1e-9 >= lb, "a schedule below the lower bound is impossible");
        // The accepted deadline is bracketed by [LB, 2·LB].
        prop_assert!(out.deadline + 1e-9 >= lb);
        prop_assert!(out.deadline <= 2.0 * lb + 1e-9);
        if out.exact_packing {
            prop_assert!(cmax <= out.certified_value() + 1e-6,
                "cmax {} above the certified value {}", cmax, out.certified_value());
        }
        // Whatever happens (including the FFD fallback into bins inflated
        // to (1+ε)·d with d ≤ 2·LB), a coarse safety bound always holds.
        prop_assert!(cmax <= (1.0 + eps) * 2.0 * lb + 1e-6);
    }

    /// Against the exact optimum on tiny instances the (1 + ε) bound holds
    /// whenever the exact configuration DP was used throughout.
    #[test]
    fn ptas_respects_one_plus_eps_on_small_instances(
        p in vec(0.5f64..20.0, 2..9),
        m in 2usize..4,
        eps in 0.15f64..0.5,
    ) {
        let s = vec![1.0; p.len()];
        let inst = Instance::from_ps(&p, &s, m).unwrap();
        let out = ptas_cmax(&inst, eps);
        let cmax = cmax_of_assignment(inst.tasks(), &out.assignment);
        let opt = brute_force_cmax(&p, m);
        if out.exact_packing {
            prop_assert!(
                cmax <= (1.0 + eps) * opt * (1.0 + 1e-6) + 1e-6,
                "cmax {} > (1+{}) × OPT {}", cmax, eps, opt
            );
        }
        prop_assert!(cmax + 1e-9 >= opt);
    }

    /// The memory-objective variant is the exact mirror of the makespan
    /// variant on the swapped instance.
    #[test]
    fn ptas_mmax_mirrors_ptas_cmax(
        p in vec(0.5f64..20.0, 1..25),
        m in 1usize..5,
    ) {
        let s: Vec<f64> = p.iter().rev().cloned().collect();
        let inst = Instance::from_ps(&p, &s, m).unwrap();
        let a = ptas_mmax(&inst, 0.3);
        let b = ptas_cmax(&inst.swapped(), 0.3);
        let mem_a = mmax_of_assignment(inst.tasks(), &a.assignment);
        let cmax_b = cmax_of_assignment(inst.swapped().tasks(), &b.assignment);
        prop_assert!((mem_a - cmax_b).abs() < 1e-9);
        prop_assert!((a.deadline - b.deadline).abs() < 1e-9);
    }

    /// The dual test is monotone: if it accepts a deadline it also accepts
    /// every larger deadline, and its packing respects the inflated bins.
    #[test]
    fn dual_test_is_monotone_and_respects_bins(
        p in vec(0.5f64..20.0, 1..20),
        m in 1usize..5,
        eps in 0.2f64..0.5,
    ) {
        let total: f64 = p.iter().sum();
        let maxp = p.iter().cloned().fold(0.0, f64::max);
        let lb = (total / m as f64).max(maxp);
        // d = 2·LB is always accepted (a Graham schedule fits).
        let accepted = dual_test(&p, m, 2.0 * lb, eps);
        prop_assert!(accepted.is_some());
        let res = accepted.unwrap();
        let tasks = sws_model::task::TaskSet::from_ps(&p, &vec![1.0; p.len()]).unwrap();
        let cmax = cmax_of_assignment(&tasks, &res.assignment);
        prop_assert!(cmax <= certified_makespan(2.0 * lb, eps) + 1e-6);
        // If some deadline d is accepted then 1.5·d is accepted as well.
        if dual_test(&p, m, 1.2 * lb, eps).is_some() {
            prop_assert!(dual_test(&p, m, 1.8 * lb, eps).is_some());
        }
    }

    /// Rounding: the number of large jobs and size classes stays within the
    /// 1/ε² bound that makes the configuration DP polynomial.
    #[test]
    fn rounding_respects_its_class_bounds(
        p in vec(0.5f64..30.0, 1..40),
        eps in 0.15f64..0.6,
    ) {
        let maxp = p.iter().cloned().fold(0.0, f64::max);
        let deadline = maxp.max(p.iter().sum::<f64>() / 2.0);
        let r = Rounding::new(&p, deadline, eps);
        prop_assert!(r.large_count() <= p.len());
        // Size classes are bounded by ~1/ε² + 1 (the classical bucketing).
        let class_bound = (1.0 / (eps * eps)).ceil() as usize + 2;
        prop_assert!(r.class_count() <= class_bound,
            "{} classes exceeds the 1/ε² bound {}", r.class_count(), class_bound);
        prop_assert!(r.state_space() >= 1);
    }
}

#[test]
fn ptas_certified_value_is_meaningful_on_a_known_instance() {
    // Five jobs of size 2 on two machines: OPT = 6.
    let inst = Instance::from_ps(&[2.0; 5], &[1.0; 5], 2).unwrap();
    let out = ptas_cmax(&inst, 0.2);
    let cmax = cmax_of_assignment(inst.tasks(), &out.assignment);
    assert!(cmax <= 1.2 * 6.0 + 1e-6);
    assert!(out.certified_value() + 1e-9 >= cmax || !out.exact_packing);
}

#[test]
fn degenerate_inputs_are_handled() {
    let empty = ptas_schedule(&[], 3, 0.3);
    assert_eq!(empty.assignment.n(), 0);
    let zeros = ptas_schedule(&[0.0, 0.0, 0.0], 2, 0.3);
    assert_eq!(zeros.assignment.n(), 3);
    let single = ptas_schedule(&[5.0], 4, 0.2);
    assert_eq!(single.assignment.n(), 1);
}
