//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The repository only uses serde for `#[derive(Serialize, Deserialize)]`
//! annotations — nothing serializes through serde at runtime (tables and
//! figures are rendered by hand in `sws-bench`). Expanding the derives to
//! nothing keeps every annotation compiling without the real crate.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
