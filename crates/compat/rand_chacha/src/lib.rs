//! Offline shim for `rand_chacha`: a genuine ChaCha8 keystream generator
//! behind the [`ChaCha8Rng`] name.
//!
//! The block function is the standard ChaCha quarter-round network with 8
//! rounds (RFC 8439 structure, reduced round count), so the statistical
//! quality matches the real crate. The seeding path differs (the 256-bit
//! key is expanded from the 64-bit seed with SplitMix64), so *sequences
//! are not bit-compatible* with crates.io `rand_chacha` — they are,
//! however, fully deterministic and platform-independent, which is what
//! the experiment harness actually relies on.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "exhausted".
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn chacha_block(input: &[u32; 16], rounds: usize) -> [u32; 16] {
    let mut s = *input;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut s, 0, 4, 8, 12);
        quarter_round(&mut s, 1, 5, 9, 13);
        quarter_round(&mut s, 2, 6, 10, 14);
        quarter_round(&mut s, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut s, 0, 5, 10, 15);
        quarter_round(&mut s, 1, 6, 11, 12);
        quarter_round(&mut s, 2, 7, 8, 13);
        quarter_round(&mut s, 3, 4, 9, 14);
    }
    for (out, inp) in s.iter_mut().zip(input.iter()) {
        *out = out.wrapping_add(*inp);
    }
    s
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    /// Builds a generator from a full 256-bit key.
    pub fn from_key(key: [u32; 8]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        // words 12..16: 64-bit block counter + 64-bit nonce, all zero.
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }

    fn refill(&mut self) {
        self.buffer = chacha_block(&self.state, CHACHA_ROUNDS);
        // Increment the 64-bit block counter (words 12 and 13).
        let counter = (self.state[12] as u64) | ((self.state[13] as u64) << 32);
        let counter = counter.wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = splitmix64(&mut sm);
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        ChaCha8Rng::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn chacha_block_changes_with_counter() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn output_is_roughly_uniform() {
        // Count set bits across many words — should hover around 50 %.
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let bits: u64 = (0..4096).map(|_| rng.next_u64().count_ones() as u64).sum();
        let ratio = bits as f64 / (4096.0 * 64.0);
        assert!((ratio - 0.5).abs() < 0.01, "bit ratio {ratio}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..5 {
            a.next_u64();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
