//! Offline shim for `proptest`: deterministic random-input testing with
//! the subset of the real crate's API this repository uses.
//!
//! Differences from crates.io proptest, by design:
//!
//! * inputs are drawn from a deterministic per-test RNG (seeded from the
//!   test's name), so failures are reproducible by rerunning the test;
//! * there is **no shrinking** — a failing case panics with the case
//!   number so it can be investigated directly;
//! * `prop_assert*!` macros panic (like `assert!`) instead of returning
//!   `Err`, which is equivalent under this runner.

#![forbid(unsafe_code)]

pub mod collection;
pub mod rng;
pub mod strategy;

pub use strategy::{any, Just, Strategy};

/// Runner configuration — only the number of cases is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Everything a property-test module typically imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// The `proptest! { ... }` block: defines `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($body:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($body)* }
    };
    ($($body:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($body)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$attr:meta])*
         fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::rng::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            $(
                                let $pat =
                                    $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                            )+
                            $body
                        }),
                    );
                    if let Err(payload) = __result {
                        eprintln!(
                            "proptest shim: property '{}' failed at case {}/{} \
                             (deterministic seed — rerun reproduces it)",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_generate_in_bounds(x in 3usize..10, y in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
        }

        #[test]
        fn vectors_respect_size_bounds(v in vec(0.0f64..1.0, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn flat_map_threads_values((n, v) in (1usize..5)
            .prop_flat_map(|n| (Just(n), vec(0usize..100, n)))) {
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = crate::rng::TestRng::from_name("any_bool");
        let draws: Vec<bool> = (0..64)
            .map(|_| Strategy::generate(&any::<bool>(), &mut rng))
            .collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }
}
