//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// A length specification for collection strategies: either an exact size
/// or a range of sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            rng.usize_in(self.lo, self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values drawn from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Builds a [`VecStrategy`]: `vec(element, 1..40)` or `vec(element, n)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut rng = TestRng::from_name("sizes");
        let exact = vec(0usize..10, 5usize);
        assert_eq!(exact.generate(&mut rng).len(), 5);
        let ranged = vec(0usize..10, 2..7);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
        let inclusive = vec(0usize..10, 0..=3);
        for _ in 0..100 {
            assert!(inclusive.generate(&mut rng).len() <= 3);
        }
    }
}
