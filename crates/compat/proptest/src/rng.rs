//! Deterministic RNG for the proptest shim (SplitMix64).

/// The generator backing all strategy draws. Seeded from the test name so
/// every property gets an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Seeds directly from a 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty usize range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_seeding_is_deterministic_and_name_sensitive() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
