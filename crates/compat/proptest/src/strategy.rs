//! Strategies: composable random-value generators.

use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy it selects —
    /// the monadic bind used for dependent inputs.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy type `any` returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for a type.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// `any::<bool>()` support.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::from_name("compose");
        let strat =
            (1usize..4).prop_flat_map(|n| (Just(n), crate::collection::vec(0.0f64..1.0, n)));
        for _ in 0..50 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
        let doubled = (2usize..3).prop_map(|x| x * 2);
        assert_eq!(doubled.generate(&mut rng), 4);
    }
}
