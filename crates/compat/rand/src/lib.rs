//! Offline shim for the `rand` crate (0.8-era API surface).
//!
//! Provides the traits the repository uses — [`RngCore`], [`Rng`] with
//! `gen` / `gen_range` / `gen_bool`, and [`SeedableRng`] — with the same
//! signatures as the real crate for the types actually drawn
//! (`u32`/`u64`/`usize`/`f64`/`bool`, half-open and inclusive ranges).
//! The concrete generator lives in the sibling `rand_chacha` shim.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of `next_u64` by default).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types drawable uniformly from the full value range (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    f64::sample(rng)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

/// The user-facing generator trait (blanket-implemented for every
/// [`RngCore`], as in the real crate).
pub trait Rng: RngCore {
    /// Draws a value of `T` from its full range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 step — good enough to exercise the adapters.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.25f64..4.0);
            assert!((0.25..4.0).contains(&y));
            let z = rng.gen_range(5u64..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = Counter(7);
        let draws: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(draws.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = Counter(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
