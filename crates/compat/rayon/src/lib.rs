//! Offline shim for `rayon`: data parallelism over `std::thread::scope`.
//!
//! Supports the pipeline the repository uses — `into_par_iter()` on
//! `Vec<T>` and `usize` ranges, chained `.map(..)` stages, and
//! `.collect::<Vec<_>>()` — preserving input order. Work is split into
//! one contiguous chunk per available core; each chunk is processed on
//! its own scoped thread. There is no work stealing, so heavily skewed
//! per-item costs parallelize less evenly than under real rayon, but the
//! ∆-sweep workloads this repo fans out are close to uniform.

#![forbid(unsafe_code)]

use std::ops::Range;

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

/// Number of worker threads configured: the `SWS_RAYON_THREADS`
/// environment variable when set (the shim's stand-in for rayon's
/// `RAYON_NUM_THREADS`, read per call so benchmarks can vary it), else
/// the number of available cores.
fn configured_threads() -> usize {
    std::env::var("SWS_RAYON_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
}

/// Number of worker threads to use for `len` items.
fn worker_count(len: usize) -> usize {
    configured_threads().min(len.max(1))
}

/// Order-preserving parallel map used by every adapter.
fn par_map_vec<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<T> = iter.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let mut results: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for handle in handles {
            results.push(handle.join().expect("parallel worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// A (fully materialized) parallel iterator.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item: Send;

    /// Runs the pipeline and returns the items in order.
    fn drive(self) -> Vec<Self::Item>;

    /// Parallel map stage.
    fn map<U, F>(self, f: F) -> MapPar<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        MapPar { inner: self, f }
    }

    /// Collects into a container.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_vec(self.drive())
    }
}

/// Containers a parallel iterator can collect into.
pub trait FromParallelIterator<T: Send> {
    fn from_par_vec(items: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(items: Vec<T>) -> Self {
        items
    }
}

impl<T: Send, E: Send> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_vec(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// Base iterator over an owned vector.
pub struct VecPar<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecPar<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// Map stage; the closure runs on worker threads when `drive`n.
pub struct MapPar<P, F> {
    inner: P,
    f: F,
}

impl<P, U, F> ParallelIterator for MapPar<P, F>
where
    P: ParallelIterator,
    U: Send,
    F: Fn(P::Item) -> U + Sync,
{
    type Item = U;

    fn drive(self) -> Vec<U> {
        par_map_vec(self.inner.drive(), &self.f)
    }
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;

    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecPar<T>;

    fn into_par_iter(self) -> VecPar<T> {
        VecPar { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = VecPar<usize>;

    fn into_par_iter(self) -> VecPar<usize> {
        VecPar {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    type Iter = VecPar<u64>;

    fn into_par_iter(self) -> VecPar<u64> {
        VecPar {
            items: self.collect(),
        }
    }
}

/// `par_iter()` over a borrowed slice of clonable items (the shim clones;
/// acceptable for the small parameter structs fanned out here).
pub trait IntoParallelRefIterator {
    type Item: Send;

    fn par_iter(&self) -> VecPar<Self::Item>;
}

impl<T: Clone + Send> IntoParallelRefIterator for [T] {
    type Item = T;

    fn par_iter(&self) -> VecPar<T> {
        VecPar {
            items: self.to_vec(),
        }
    }
}

impl<T: Clone + Send> IntoParallelRefIterator for Vec<T> {
    type Item = T;

    fn par_iter(&self) -> VecPar<T> {
        VecPar {
            items: self.clone(),
        }
    }
}

/// The global thread-pool size real rayon exposes; used by callers to
/// report measured scaling.
pub fn current_num_threads() -> usize {
    configured_threads()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chained_maps_compose() {
        let out: Vec<String> = vec![1, 2, 3]
            .into_par_iter()
            .map(|x| x + 1)
            .map(|x| x.to_string())
            .collect();
        assert_eq!(out, vec!["2", "3", "4"]);
    }

    #[test]
    fn result_collection_short_circuits_on_error() {
        let ok: Result<Vec<usize>, String> = (0..10usize).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 10);
        let err: Result<Vec<usize>, String> = (0..10usize)
            .into_par_iter()
            .map(|x| {
                if x == 5 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn actually_uses_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..64usize)
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
            .collect();
        let threads = seen.lock().unwrap().len();
        if super::current_num_threads() > 1 {
            assert!(
                threads > 1,
                "expected parallel execution, saw {threads} thread(s)"
            );
        }
    }
}
