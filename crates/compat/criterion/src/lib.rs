//! Offline shim for `criterion`: wall-clock benchmarking with the API
//! surface the repository's bench targets use.
//!
//! Each benchmark runs `sample_size` timed samples (after one warm-up
//! call) and reports min / median / mean to stdout. Setting the
//! `SWS_BENCH_JSON` environment variable to a file path additionally
//! writes every recorded measurement as a JSON array when the bench
//! binary finishes — the repo's committed `BENCH_*.json` baselines are
//! produced this way. There is no statistical outlier analysis; medians
//! over a fixed sample count are robust enough to track order-of-
//! magnitude perf changes, which is what the baselines are for.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One recorded benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full id, e.g. `group/function/param`.
    pub id: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample, nanoseconds.
    pub min_ns: u128,
    /// Median sample, nanoseconds.
    pub median_ns: u128,
    /// Mean sample, nanoseconds.
    pub mean_ns: u128,
    /// Optional throughput annotation (elements per iteration).
    pub throughput_elements: Option<u64>,
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 15,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("benchmark group '{name}'");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.default_sample_size, None, f);
        self
    }
}

/// Identifier of one benchmark within a group: function name + parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("algo", n)` renders as `algo/n`.
    pub fn new(function: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{function}/{parameter}"),
        }
    }

    /// Id from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.repr)
    }
}

/// Ids accepted by `bench_function` / `bench_with_input`.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.repr
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Units processed per iteration, for reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim has no fixed measurement
    /// budget (it always runs `sample_size` samples).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Benchmarks a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs and times the routine.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<u128>,
}

impl Bencher {
    /// Times `routine` over `sample_size` samples (one warm-up call
    /// first). Each sample is one call — the routines benchmarked in this
    /// repository are far above timer resolution.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples_ns.push(t0.elapsed().as_nanos());
        }
    }

    /// `iter_batched` compatibility: per-sample setup excluded from
    /// timing.
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t0.elapsed().as_nanos());
        }
    }
}

/// Batch sizing hint (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples_ns.is_empty() {
        eprintln!("  {id}: no samples recorded");
        return;
    }
    let mut sorted = bencher.samples_ns.clone();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<u128>() / sorted.len() as u128;
    let throughput_elements = match throughput {
        Some(Throughput::Elements(e)) => Some(e),
        _ => None,
    };
    eprintln!(
        "  {id}: median {} (min {}, mean {}, {} samples)",
        format_ns(median),
        format_ns(min),
        format_ns(mean),
        sorted.len()
    );
    RESULTS.lock().unwrap().push(BenchRecord {
        id: id.to_string(),
        samples: sorted.len(),
        min_ns: min,
        median_ns: median,
        mean_ns: mean,
        throughput_elements,
    });
}

/// Records an externally measured duration as a one-sample benchmark
/// row in the shared report — for derived metrics (e.g. a per-tenant
/// p99 read off a service run's stats) that belong in the same
/// `SWS_BENCH_JSON` artifact as the timed benchmarks but are not
/// themselves re-runnable closures.
pub fn report_duration(id: &str, d: Duration) {
    let ns = d.as_nanos();
    eprintln!("  {id}: reported {}", format_ns(ns));
    RESULTS.lock().unwrap().push(BenchRecord {
        id: id.to_string(),
        samples: 1,
        min_ns: ns,
        median_ns: ns,
        mean_ns: ns,
        throughput_elements: None,
    });
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Called by `criterion_main!` after all groups ran: writes the JSON
/// report if `SWS_BENCH_JSON` is set.
pub fn finalize() {
    let records = RESULTS.lock().unwrap();
    let Ok(path) = std::env::var("SWS_BENCH_JSON") else {
        return;
    };
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        let throughput = match r.throughput_elements {
            Some(e) => e.to_string(),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"median_ns\": {}, \
             \"mean_ns\": {}, \"throughput_elements\": {}}}{}\n",
            r.id.replace('"', "'"),
            r.samples,
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            throughput,
            sep
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion shim: could not write {path}: {e}");
    } else {
        eprintln!("criterion shim: wrote {} records to {path}", records.len());
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-test");
        group.sample_size(5);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        let results = RESULTS.lock().unwrap();
        let rec = results.iter().find(|r| r.id == "shim-test/noop").unwrap();
        assert_eq!(rec.samples, 5);
        assert!(results.iter().any(|r| r.id == "shim-test/sum/10"));
    }

    #[test]
    fn reported_durations_land_in_the_shared_results() {
        report_duration("shim-test/reported/p99", Duration::from_micros(42));
        let results = RESULTS.lock().unwrap();
        let rec = results
            .iter()
            .find(|r| r.id == "shim-test/reported/p99")
            .unwrap();
        assert_eq!(rec.samples, 1);
        assert_eq!(rec.median_ns, 42_000);
        assert_eq!(rec.min_ns, rec.mean_ns);
    }
}
