//! Offline shim for `serde`: re-exports the no-op derive macros under the
//! names the real crate exposes, plus empty marker traits so trait bounds
//! keep compiling if a future change introduces any.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::ser::Serialize` (no methods — the shim
/// never serializes).
pub trait SerializeTrait {}

/// Marker trait mirroring `serde::de::Deserialize` (no methods).
pub trait DeserializeTrait {}
