//! Concurrent stress test of the scheduling service: many tenants,
//! mixed guarantees, mid-stream cancellation — asserting that every
//! request reaches **exactly one** terminal outcome and that every
//! delivered solution is bit-identical to a direct `Portfolio::solve`
//! call.
//!
//! CI runs this under the repository's quick-mode env gate
//! (`SWS_BENCH_QUICK=1`), which shrinks the request volume; the full
//! tier-1 run uses the default sizes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use sws_core::portfolio::Portfolio;
use sws_model::policy::{OverflowPolicy, TenantPolicy};
use sws_model::solve::{Guarantee, ObjectiveMode, SolveRequest};
use sws_model::Instance;
use sws_service::{SchedulingService, ServiceError, ServiceRequest, Ticket};
use sws_workloads::random::random_instance;
use sws_workloads::rng::{derive_seed, seeded_rng};
use sws_workloads::TaskDistribution;

/// Quick mode (the CI env gate shared with the benches) shrinks the
/// stream.
fn quick() -> bool {
    std::env::var("SWS_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

#[test]
fn stress_many_tenants_with_midstream_cancellation() {
    let tenants = 8usize;
    let per_tenant = if quick() { 24 } else { 96 };
    let portfolio = Portfolio::standard();

    let mut builder = SchedulingService::builder()
        .workers(2)
        .queue_capacity(tenants * per_tenant);
    for t in 0..tenants {
        // Half the tenants run permissive Queue policies, half run
        // Degrade with a paper-ratio floor — both admission shapes stay
        // under stress.
        let policy = if t % 2 == 0 {
            TenantPolicy::unlimited().with_overflow(OverflowPolicy::Queue)
        } else {
            TenantPolicy::unlimited()
                .with_guarantee_floor(Guarantee::PaperRatio)
                .with_overflow(OverflowPolicy::Degrade)
        };
        builder = builder.tenant(format!("tenant-{t}"), policy);
    }
    let service = builder.build();
    let handle = service.handle();

    // Small instances: the point is churn, not per-solve weight.
    let instances: Vec<Arc<Instance>> = (0..16)
        .map(|k| {
            Arc::new(random_instance(
                12 + (k % 3) * 9,
                2 + (k % 3),
                TaskDistribution::AntiCorrelated,
                &mut seeded_rng(derive_seed(0x57E55, k as u64)),
            ))
        })
        .collect();
    let objectives = [
        ObjectiveMode::CmaxOnly,
        ObjectiveMode::BiObjective { delta: 2.5 },
        ObjectiveMode::BiObjective { delta: 4.0 },
        ObjectiveMode::TriObjective { delta: 3.0 },
    ];

    let completed = AtomicU64::new(0);
    let cancelled = AtomicU64::new(0);
    let outcomes_delivered = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for t in 0..tenants {
            let handle = handle.clone();
            let instances = &instances;
            let objectives = &objectives;
            let completed = &completed;
            let cancelled = &cancelled;
            let outcomes_delivered = &outcomes_delivered;
            let portfolio = &portfolio;
            scope.spawn(move || {
                let tenant = format!("tenant-{t}");
                let mut tickets: Vec<(usize, ObjectiveMode, Guarantee, Ticket)> = Vec::new();
                for i in 0..per_tenant {
                    let inst_idx = (t * 7 + i * 3) % instances.len();
                    let objective = objectives[(t + i) % objectives.len()];
                    let guarantee = match i % 3 {
                        0 => Guarantee::None,
                        1 => Guarantee::PaperRatio,
                        _ => Guarantee::None,
                    };
                    let request = ServiceRequest::independent(
                        tenant.clone(),
                        Arc::clone(&instances[inst_idx]),
                        objective,
                    )
                    .with_guarantee(guarantee)
                    .with_priority((i % 4) as u8);
                    let ticket = handle
                        .submit(request)
                        .expect("stress requests are all admissible");
                    // Mid-stream: cancel every 7th request right after
                    // a later submission, so cancellations race real
                    // dispatch.
                    let effective = ticket.effective_guarantee();
                    tickets.push((inst_idx, objective, effective, ticket));
                    if i % 7 == 6 {
                        let (_, _, _, victim) = &tickets[tickets.len() - 4];
                        victim.cancel();
                    }
                }
                for (inst_idx, objective, effective, ticket) in tickets {
                    let outcome = ticket.wait();
                    outcomes_delivered.fetch_add(1, Ordering::Relaxed);
                    match outcome {
                        Ok(served) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                            // Bit-identical to the direct solve at the
                            // admitted guarantee.
                            let direct = portfolio
                                .solve(
                                    &SolveRequest::independent(&instances[inst_idx], objective)
                                        .with_guarantee(effective),
                                )
                                .expect("direct solve must succeed");
                            assert_eq!(served.schedule, direct.schedule);
                            assert_eq!(served.point, direct.point);
                            assert_eq!(served.stats.backend, direct.stats.backend);
                        }
                        Err(ServiceError::Cancelled) => {
                            cancelled.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(err) => {
                            // Nothing else is expected for these
                            // requests.
                            panic!("unexpected terminal outcome: {err:?}");
                        }
                    }
                }
            });
        }
    });

    let total = (tenants * per_tenant) as u64;
    assert_eq!(
        outcomes_delivered.load(Ordering::Relaxed),
        total,
        "every request produced exactly one terminal outcome"
    );
    assert_eq!(
        completed.load(Ordering::Relaxed) + cancelled.load(Ordering::Relaxed),
        total
    );

    let stats = service.shutdown();
    assert_eq!(stats.global.admitted, total);
    assert_eq!(stats.global.terminal_outcomes(), total);
    assert_eq!(stats.global.completed, completed.load(Ordering::Relaxed));
    assert_eq!(stats.global.cancelled, cancelled.load(Ordering::Relaxed));
    assert_eq!(stats.global.refused, 0);
    assert_eq!(stats.global.in_flight, 0);
    assert_eq!(stats.queue_depth, 0);
    // Per-tenant accounting adds up to the global aggregate.
    let per_tenant_terminal: u64 = stats.tenants.iter().map(|t| t.terminal_outcomes()).sum();
    assert_eq!(per_tenant_terminal, total);
}

/// The headline overload-fairness acceptance test: one tenant floods a
/// single-worker service at **10× its in-flight quota** (absorbed by
/// its `Queue` overflow policy), ahead of a victim tenant's requests.
/// Under the deficit-round-robin queue the victim's p99 — read off the
/// `ServiceStats` histograms — must stay under a stated fraction of the
/// drain: each victim request waits one rotation (~one flood request),
/// never the flood's whole backlog. The bound is expressed relative to
/// the measured drain time, so machine speed and CI noise scale both
/// sides equally; under the old strict-priority pop the victims (queued
/// behind the entire burst) would sit at the drain's tail and fail it
/// by a wide margin.
#[test]
fn a_flooding_tenant_cannot_push_another_tenants_p99_past_the_bound() {
    let victims = if quick() { 16 } else { 48 };
    let quota = victims;
    let flood_n = 10 * quota;
    let total = flood_n + victims;

    let service = SchedulingService::builder()
        .workers(1)
        .queue_capacity(total + 8)
        .tenant("victim", TenantPolicy::unlimited())
        .tenant(
            "flood",
            TenantPolicy::unlimited()
                .with_max_in_flight(quota)
                .with_overflow(OverflowPolicy::Queue),
        )
        .build();
    let handle = service.handle();

    // One shared instance: every request costs the same work units, so
    // the DRR rotation alternates one-for-one between the lanes.
    let inst = Arc::new(random_instance(
        16,
        2,
        TaskDistribution::Uncorrelated,
        &mut seeded_rng(derive_seed(0xF100D, 1)),
    ));
    let mk = |tenant: &str| {
        ServiceRequest::independent(tenant, Arc::clone(&inst), ObjectiveMode::CmaxOnly)
    };

    let started = Instant::now();
    let flood_tickets: Vec<Ticket> = (0..flood_n)
        .map(|_| handle.submit(mk("flood")).expect("flood burst queues"))
        .collect();
    let mid = handle.stats();
    let victim_tickets: Vec<Ticket> = (0..victims)
        .map(|_| handle.submit(mk("victim")).expect("victim submits admit"))
        .collect();

    // The lane gauges are live while the backlog drains.
    if let Some(flood_scope) = mid.tenant("flood") {
        if flood_scope.queued > 0 {
            assert!(flood_scope.head_wait.is_some());
        }
        assert_eq!(mid.global.queued, mid.queue_depth);
    }

    for ticket in victim_tickets {
        ticket.wait().expect("victim requests complete");
    }
    for ticket in flood_tickets {
        ticket.wait().expect("flood requests complete");
    }
    let drain = started.elapsed();

    let stats = service.shutdown();
    let victim = stats.tenant("victim").expect("victim scope");
    let flood = stats.tenant("flood").expect("flood scope");
    assert_eq!(victim.completed as usize, victims);
    assert_eq!(flood.completed as usize, flood_n);
    assert_eq!(stats.global.refused, 0);
    assert_eq!(stats.global.in_flight, 0);
    assert_eq!(stats.queue_depth, 0);

    let victim_p99 = victim.p99_latency.expect("victim histogram has data");
    let flood_p99 = flood.p99_latency.expect("flood histogram has data");

    // The stated bound: the victims' share of the drain is
    // victims/total of the service rate, and the last victim completes
    // after ~2·victims rotations; 3× that is generous slack for bucket
    // width and pickup races, yet ~4× below where strict priority
    // would put it (the full drain).
    let bound = drain * 3 * (victims as u32) / (total as u32);
    assert!(
        victim_p99 <= bound,
        "victim p99 {victim_p99:?} exceeds the fairness bound {bound:?} (drain {drain:?})"
    );
    // And the flood pays for its own burst: its tail rides the whole
    // backlog, far behind the victims it failed to starve.
    assert!(
        flood_p99 >= victim_p99 * 2,
        "flood p99 {flood_p99:?} suspiciously close to victim p99 {victim_p99:?}"
    );
}
