//! Differential tests for the incremental ∆-sweeps: the warm-started
//! [`sws_core::pareto_sweep`] engines against the retained from-scratch
//! serial oracles (`rls_sweep_cold`, `sbo_sweep_cold`).
//!
//! The warm path claims **bit-identical output**: the kernel's
//! checkpoint/resume machinery replays a previous run up to the first
//! scheduling round whose admissibility verdict changes, so every
//! warm-started run must equal a cold run placement for placement —
//! across every DAG generator family, every priority order and several
//! processor counts. The suite also pins the satellite fixes: exact grid
//! endpoints, explicit limit runs instead of sentinel ∆s, symmetric
//! parameter validation and order-independent front tie-breaking.

use sws_core::pareto_sweep::{
    delta_grid, rls_sweep, rls_sweep_cold, sbo_sweep, sbo_sweep_cold, SweepEngine, SweepProvenance,
};
use sws_core::rls::{rls, PriorityOrder, RlsConfig, RlsEngine};
use sws_core::sbo::InnerAlgorithm;
use sws_dag::DagInstance;
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::random::random_instance;
use sws_workloads::rng::{derive_seed, seeded_rng};
use sws_workloads::TaskDistribution;

const SWEEP_SEED: u64 = 0x5EED;

fn workload(family: DagFamily, n: usize, m: usize, stream: u64) -> DagInstance {
    let mut rng = seeded_rng(derive_seed(SWEEP_SEED, stream));
    dag_workload(family, n, m, TaskDistribution::AntiCorrelated, &mut rng)
}

/// Warm-started RLS∆ sweeps vs the from-scratch serial oracle over every
/// generator family × priority order × m ∈ {2, 4, 8}: identical curves,
/// point for point and schedule for schedule.
#[test]
fn warm_rls_sweep_is_bit_identical_to_cold_across_families_orders_and_m() {
    let mut stream = 0u64;
    for family in DagFamily::all() {
        for order in PriorityOrder::all() {
            for &m in &[2usize, 4, 8] {
                stream += 1;
                let inst = workload(family, 42, m, stream);
                let config = RlsConfig::new(3.0).with_order(order);
                let warm = rls_sweep(&inst, &config, 2.1, 12.0, 8).unwrap();
                let cold = rls_sweep_cold(&inst, &config, 2.1, 12.0, 8).unwrap();
                assert_eq!(
                    warm.len(),
                    cold.len(),
                    "{}/{} m={m}: curve lengths differ",
                    family.label(),
                    order.label()
                );
                for (w, c) in warm.iter().zip(&cold) {
                    assert_eq!(
                        w.delta,
                        c.delta,
                        "{}/{} m={m}",
                        family.label(),
                        order.label()
                    );
                    assert_eq!(w.provenance, c.provenance);
                    assert_eq!(
                        w.schedule,
                        c.schedule,
                        "{}/{} m={m} ∆={}: schedules differ",
                        family.label(),
                        order.label(),
                        w.delta
                    );
                    assert_eq!(w.point.cmax, c.point.cmax);
                    assert_eq!(w.point.mmax, c.point.mmax);
                }
            }
        }
    }
}

/// Warm-started SBO∆ sweeps vs the from-scratch oracle over every task
/// distribution and two inner algorithms.
#[test]
fn warm_sbo_sweep_is_bit_identical_to_cold_across_distributions() {
    let mut stream = 100u64;
    for distribution in TaskDistribution::all() {
        for inner in [InnerAlgorithm::Graham, InnerAlgorithm::Lpt] {
            for &m in &[2usize, 4] {
                stream += 1;
                let mut rng = seeded_rng(derive_seed(SWEEP_SEED, stream));
                let inst = random_instance(36, m, distribution, &mut rng);
                let warm = sbo_sweep(&inst, inner, 0.125, 8.0, 11).unwrap();
                let cold = sbo_sweep_cold(&inst, inner, 0.125, 8.0, 11).unwrap();
                assert_eq!(warm.len(), cold.len());
                for (w, c) in warm.iter().zip(&cold) {
                    assert_eq!(w.delta, c.delta);
                    assert_eq!(w.provenance, c.provenance);
                    assert_eq!(w.schedule, c.schedule, "inner={} m={m}", inner.label());
                }
            }
        }
    }
}

/// The per-∆ results of a warm chain (not just the merged front) must
/// equal cold runs, and the chain must actually skip work: once the cap
/// stops binding, resumes replay zero rounds.
#[test]
fn warm_chains_match_cold_runs_and_amortize_replay() {
    let inst = workload(DagFamily::LayeredRandom, 120, 8, 777);
    let grid = delta_grid(2.05, 64.0, 24).unwrap();
    let mut engine = RlsEngine::new(&inst, PriorityOrder::Index);
    let mut replayed_total = 0usize;
    for &delta in &grid {
        let warm = engine.run(delta).unwrap();
        let cold = rls(&inst, &RlsConfig::new(delta)).unwrap();
        assert_eq!(warm.schedule, cold.schedule, "∆={delta}");
        assert_eq!(warm.marked, cold.marked, "∆={delta}");
        replayed_total += engine.replayed_rounds().unwrap();
    }
    let from_scratch_total = grid.len() * inst.n();
    assert!(
        replayed_total < from_scratch_total / 2,
        "warm chain replayed {replayed_total} of {from_scratch_total} rounds — no amortization"
    );
    // The last grid value is deep in the never-rejecting regime.
    assert_eq!(engine.replayed_rounds(), Some(0));
}

/// Chunked parallel fan-out vs a single serial chain: the merged curve
/// must not depend on the chunking (and therefore not on the worker
/// count of the machine).
#[test]
fn sweep_chunking_does_not_change_the_curve() {
    let inst = workload(DagFamily::GaussianElimination, 60, 4, 888);
    let grid = delta_grid(2.2, 10.0, 13).unwrap();
    let one = SweepEngine::with_workers(1)
        .run_rls(&inst, PriorityOrder::BottomLevel, &grid)
        .unwrap();
    for workers in [2usize, 3, 5, 13] {
        let chunked = SweepEngine::with_workers(workers)
            .run_rls(&inst, PriorityOrder::BottomLevel, &grid)
            .unwrap();
        assert_eq!(one.len(), chunked.len());
        for ((da, ra), (db, rb)) in one.iter().zip(&chunked) {
            assert_eq!(da, db, "workers={workers}");
            assert_eq!(ra.schedule, rb.schedule, "workers={workers} ∆={da}");
            assert_eq!(ra.marked, rb.marked);
        }
    }
}

/// Exact grid endpoints: no ln/exp round-trip drift on either bound.
#[test]
fn delta_grid_endpoints_are_exact() {
    for (lo, hi, samples) in [
        (2.1, 16.0, 1000),
        (0.125, 8.0, 17),
        (3.0, 1e9, 7),
        (1e-10, 1e12, 9),
    ] {
        let grid = delta_grid(lo, hi, samples).unwrap();
        assert_eq!(grid[0], lo, "first grid point drifted off ∆min");
        assert_eq!(
            *grid.last().unwrap(),
            hi,
            "last grid point drifted off ∆max"
        );
        assert!(
            grid.windows(2).all(|w| w[0] < w[1]),
            "grid must be ascending"
        );
    }
}

/// Symmetric validation: all three entry points reject NaN/∞/non-positive
/// bounds with `InvalidParameter` instead of panicking or producing
/// garbage grids.
#[test]
fn sweep_entry_points_reject_invalid_bounds_symmetrically() {
    use sws_model::error::ModelError;
    let check = |r: Result<Vec<f64>, ModelError>| {
        assert!(matches!(r, Err(ModelError::InvalidParameter { .. })));
    };
    check(delta_grid(f64::NAN, 4.0, 5));
    check(delta_grid(1.0, f64::NAN, 5));
    check(delta_grid(-2.0, 4.0, 5));
    check(delta_grid(1.0, f64::INFINITY, 5));

    let inst = random_instance(
        12,
        3,
        TaskDistribution::Uncorrelated,
        &mut seeded_rng(derive_seed(SWEEP_SEED, 999)),
    );
    assert!(sbo_sweep(&inst, InnerAlgorithm::Lpt, f64::NAN, 8.0, 5).is_err());
    assert!(sbo_sweep(&inst, InnerAlgorithm::Lpt, 0.0, 8.0, 5).is_err());
    assert!(sbo_sweep(&inst, InnerAlgorithm::Lpt, 0.5, f64::INFINITY, 5).is_err());

    let dag = workload(DagFamily::Diamond, 20, 3, 1000);
    assert!(rls_sweep(&dag, &RlsConfig::new(3.0), f64::NAN, 8.0, 5).is_err());
    assert!(rls_sweep(&dag, &RlsConfig::new(3.0), f64::INFINITY, 8.0, 5).is_err());
    assert!(rls_sweep(&dag, &RlsConfig::new(3.0), 2.5, f64::NAN, 5).is_err());
    assert!(rls_sweep(&dag, &RlsConfig::new(3.0), 2.0, 8.0, 5).is_err());
}

/// Sentinel regression: ranges at or beyond the old `1e9` sentinel work,
/// and the single-objective endpoints arrive as tagged limit runs.
#[test]
fn sbo_sweep_limit_runs_replace_the_old_sentinels() {
    let inst = random_instance(
        18,
        3,
        TaskDistribution::AntiCorrelated,
        &mut seeded_rng(derive_seed(SWEEP_SEED, 1001)),
    );
    let curve = sbo_sweep(&inst, InnerAlgorithm::Lpt, 1e8, 1e10, 5).unwrap();
    assert!(!curve.is_empty());
    for p in &curve {
        match p.provenance {
            SweepProvenance::Grid => assert!((1e8..=1e10).contains(&p.delta)),
            SweepProvenance::CmaxLimit => assert_eq!(p.delta, 0.0),
            SweepProvenance::MmaxLimit => assert_eq!(p.delta, f64::INFINITY),
        }
    }
    // The ∆ → 0 limit (π₁ only) survives merging: it has the best
    // makespan of the whole sweep, which at ∆min = 1e8 no grid point
    // can beat (they all route essentially everything to π₂).
    assert!(curve
        .iter()
        .any(|p| p.provenance == SweepProvenance::CmaxLimit));
}

/// Front tie determinism: merging the same runs in opposite orders keeps
/// the same reported ∆ (the smallest achieving the point).
#[test]
fn front_merge_reports_the_smallest_delta_regardless_of_order() {
    use sws_model::pareto::ParetoFront;
    use sws_model::ObjectivePoint;

    let point = ObjectivePoint::new(10.0, 5.0);
    let prefer = |new: &f64, old: &f64| new < old;
    let mut forward: ParetoFront<f64> = ParetoFront::new();
    let mut backward: ParetoFront<f64> = ParetoFront::new();
    let deltas = [2.5, 3.0, 4.0, 8.0];
    for &d in &deltas {
        forward.offer_with(point, d, prefer);
    }
    for &d in deltas.iter().rev() {
        backward.offer_with(point, d, prefer);
    }
    assert_eq!(forward.len(), 1);
    assert_eq!(forward.iter().next().unwrap().1, &2.5);
    assert_eq!(backward.iter().next().unwrap().1, &2.5);
}
