//! End-to-end acceptance test of the scheduling service: ≥ 512
//! mixed-guarantee requests from 4 tenants submitted **concurrently**
//! through [`ServiceHandle`], proving
//!
//! (a) every served result is bit-identical to a direct
//!     `Portfolio::solve` call at the ticket's effective guarantee,
//! (b) tenant quotas and admission verdicts are enforced — the run
//!     observes at least one typed refusal and at least one
//!     policy-driven degradation,
//! (c) shutdown drains cleanly: every request got exactly one terminal
//!     outcome, nothing lost, nothing duplicated, nothing in flight.

use std::sync::Arc;

use sws_core::portfolio::Portfolio;
use sws_dag::DagInstance;
use sws_model::policy::{AdmissionVerdict, OverflowPolicy, TenantPolicy};
use sws_model::solve::{Guarantee, ObjectiveMode, SolveRequest};
use sws_model::{Instance, ModelError};
use sws_service::{SchedulingService, ServiceError, ServiceRequest};
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::random::random_instance;
use sws_workloads::rng::{derive_seed, seeded_rng};
use sws_workloads::TaskDistribution;

/// Requests per tenant; 4 tenants ⇒ 512 total.
const PER_TENANT: usize = 128;

/// The shared instance pool: independent instances of three sizes plus
/// DAGs from several families.
struct Fleet {
    tiny: Vec<Arc<Instance>>,
    mid: Vec<Arc<Instance>>,
    big: Vec<Arc<Instance>>,
    dags: Vec<Arc<DagInstance>>,
    /// n = 16, m = 3: the branch-and-bound *qualifies* (n ≤ 18) but its
    /// 3^16 ≈ 4.3e7 work estimate exceeds the 1e7 tenant gates below —
    /// the shape that distinguishes a work-gate refusal from a
    /// no-backend refusal.
    gate: Arc<Instance>,
}

fn fleet() -> Fleet {
    let mut rng = seeded_rng(0xE2E);
    let tiny = (0..4)
        .map(|k| {
            Arc::new(random_instance(
                8,
                2,
                TaskDistribution::AntiCorrelated,
                &mut seeded_rng(derive_seed(1, k)),
            ))
        })
        .collect();
    let mid = (0..4)
        .map(|k| {
            Arc::new(random_instance(
                40,
                4,
                TaskDistribution::Uncorrelated,
                &mut seeded_rng(derive_seed(2, k)),
            ))
        })
        .collect();
    let big = (0..4)
        .map(|k| {
            Arc::new(random_instance(
                300,
                8,
                TaskDistribution::Bimodal,
                &mut seeded_rng(derive_seed(3, k)),
            ))
        })
        .collect();
    let dags = [
        DagFamily::LayeredRandom,
        DagFamily::ForkJoin,
        DagFamily::Diamond,
        DagFamily::GaussianElimination,
    ]
    .into_iter()
    .map(|family| {
        Arc::new(dag_workload(
            family,
            60,
            4,
            TaskDistribution::AntiCorrelated,
            &mut rng,
        ))
    })
    .collect();
    Fleet {
        tiny,
        mid,
        big,
        dags,
        gate: Arc::new(random_instance(
            16,
            3,
            TaskDistribution::Correlated,
            &mut seeded_rng(derive_seed(4, 0)),
        )),
    }
}

/// The request mix of one tenant: deterministic round-robin over the
/// pool, with per-tenant twists that exercise the admission paths.
fn tenant_requests(tenant: &str, fleet: &Fleet) -> Vec<ServiceRequest> {
    (0..PER_TENANT)
        .map(|i| {
            let pick = i % 8;
            match (tenant, pick) {
                // Every tenant serves a baseline of DAG and independent
                // work at mixed guarantees.
                (_, 0) => ServiceRequest::dag(
                    tenant,
                    Arc::clone(&fleet.dags[i % fleet.dags.len()]),
                    ObjectiveMode::BiObjective { delta: 3.0 },
                )
                .with_guarantee(Guarantee::PaperRatio),
                (_, 1) => ServiceRequest::independent(
                    tenant,
                    Arc::clone(&fleet.mid[i % fleet.mid.len()]),
                    ObjectiveMode::CmaxOnly,
                ),
                (_, 2) => ServiceRequest::independent(
                    tenant,
                    Arc::clone(&fleet.big[i % fleet.big.len()]),
                    ObjectiveMode::BiObjective { delta: 1.0 },
                )
                .with_guarantee(Guarantee::PaperRatio),
                (_, 3) => ServiceRequest::independent(
                    tenant,
                    Arc::clone(&fleet.tiny[i % fleet.tiny.len()]),
                    ObjectiveMode::CmaxOnly,
                )
                .with_guarantee(Guarantee::Exact),
                (_, 4) => ServiceRequest::dag(
                    tenant,
                    Arc::clone(&fleet.dags[(i + 1) % fleet.dags.len()]),
                    ObjectiveMode::CmaxOnly,
                )
                .with_priority(3),
                (_, 5) => ServiceRequest::independent(
                    tenant,
                    Arc::clone(&fleet.mid[(i + 1) % fleet.mid.len()]),
                    ObjectiveMode::TriObjective { delta: 3.0 },
                ),
                // Tenant-specific slots: the premium tenant demands the
                // impossible (Exact on 300 tasks) and is degraded per
                // policy; the capped tenant demands work over its gate
                // and is refused; everyone else re-runs a cheap mode.
                ("premium", 6) => ServiceRequest::independent(
                    tenant,
                    Arc::clone(&fleet.big[i % fleet.big.len()]),
                    ObjectiveMode::CmaxOnly,
                )
                .with_guarantee(Guarantee::Exact),
                ("capped", 6) => ServiceRequest::independent(
                    tenant,
                    Arc::clone(&fleet.mid[i % fleet.mid.len()]),
                    ObjectiveMode::CmaxOnly,
                )
                .with_guarantee(Guarantee::EpsilonOptimal(0.3)),
                (_, 6) => ServiceRequest::independent(
                    tenant,
                    Arc::clone(&fleet.mid[i % fleet.mid.len()]),
                    ObjectiveMode::CmaxOnly,
                )
                .with_guarantee(Guarantee::EpsilonOptimal(0.3)),
                (_, _) => ServiceRequest::independent(
                    tenant,
                    Arc::clone(&fleet.mid[i % fleet.mid.len()]),
                    ObjectiveMode::BiObjective { delta: 2.5 },
                ),
            }
        })
        .collect()
}

/// Rebuilds the direct (borrowed) portfolio request for a service
/// request at the given effective guarantee.
fn direct_request<'a>(sr: &'a ServiceRequest, effective: Guarantee) -> SolveRequest<'a> {
    match &sr.instance {
        sws_service::ServiceInstance::Independent(inst) => {
            SolveRequest::independent(inst, sr.objective).with_guarantee(effective)
        }
        sws_service::ServiceInstance::Dag(dag) => {
            SolveRequest::precedence(&**dag, sr.objective).with_guarantee(effective)
        }
    }
}

#[test]
fn service_e2e_512_requests_4_tenants() {
    let fleet = fleet();
    // ε-optimal work on n = 40 costs well under this gate; Exact on
    // n = 40 (4^40 saturates) is far over it — the capped tenant's
    // ε requests pass while the work gate still has teeth.
    let service = SchedulingService::builder()
        .workers(2)
        .queue_capacity(1024)
        .tenant(
            "batch",
            TenantPolicy::unlimited().with_overflow(OverflowPolicy::Queue),
        )
        .tenant(
            "premium",
            TenantPolicy::unlimited()
                .with_guarantee_floor(Guarantee::PaperRatio)
                .with_overflow(OverflowPolicy::Degrade),
        )
        .tenant(
            "capped",
            TenantPolicy::unlimited()
                .with_max_estimated_work(1e7)
                .with_max_in_flight(512)
                .with_overflow(OverflowPolicy::Reject),
        )
        .tenant(
            "eco",
            TenantPolicy::unlimited()
                .with_max_estimated_work(1e7)
                .with_overflow(OverflowPolicy::Degrade),
        )
        .build();
    // The "capped" tenant's over-gate demand must exist: one
    // deterministic WorkExceeded refusal via an Exact demand whose
    // branch-and-bound plan (3^16 work) exceeds the 1e7 gate.
    let mut capped_requests = tenant_requests("capped", &fleet);
    capped_requests[7] =
        ServiceRequest::independent("capped", Arc::clone(&fleet.gate), ObjectiveMode::CmaxOnly)
            .with_guarantee(Guarantee::Exact);
    // The "eco" tenant sends the same over-gate demand but degrades.
    let mut eco_requests = tenant_requests("eco", &fleet);
    eco_requests[7] =
        ServiceRequest::independent("eco", Arc::clone(&fleet.gate), ObjectiveMode::CmaxOnly)
            .with_guarantee(Guarantee::Exact);

    let per_tenant: Vec<(String, Vec<ServiceRequest>)> = vec![
        ("batch".into(), tenant_requests("batch", &fleet)),
        ("premium".into(), tenant_requests("premium", &fleet)),
        ("capped".into(), capped_requests),
        ("eco".into(), eco_requests),
    ];
    let total_submitted: usize = per_tenant.iter().map(|(_, r)| r.len()).sum();
    assert!(total_submitted >= 512);

    // One submitter thread per tenant, all running concurrently; each
    // records (request, terminal outcome, effective guarantee).
    struct Record {
        request: ServiceRequest,
        effective: Option<Guarantee>,
        degraded: bool,
        outcome: Result<sws_model::Solution, ServiceError>,
    }
    let handle = service.handle();
    let records: Vec<Record> = std::thread::scope(|scope| {
        let threads: Vec<_> = per_tenant
            .into_iter()
            .map(|(_, requests)| {
                let handle = handle.clone();
                scope.spawn(move || {
                    let submitted: Vec<(
                        ServiceRequest,
                        Result<sws_service::Ticket, ServiceError>,
                    )> = requests
                        .into_iter()
                        .map(|r| (r.clone(), handle.submit(r)))
                        .collect();
                    submitted
                        .into_iter()
                        .map(|(request, ticket)| match ticket {
                            Ok(t) => {
                                let effective = t.effective_guarantee();
                                let degraded =
                                    matches!(t.verdict(), AdmissionVerdict::Degraded { .. });
                                Record {
                                    request,
                                    effective: Some(effective),
                                    degraded,
                                    outcome: t.wait(),
                                }
                            }
                            Err(err) => Record {
                                request,
                                effective: None,
                                degraded: false,
                                outcome: Err(err),
                            },
                        })
                        .collect::<Vec<Record>>()
                })
            })
            .collect();
        threads
            .into_iter()
            .flat_map(|t| t.join().expect("submitter panicked"))
            .collect()
    });

    // (c) one terminal outcome per request: every record holds exactly
    // one outcome by construction; counts must add up exactly.
    assert_eq!(records.len(), total_submitted);
    let stats = service.shutdown();
    assert_eq!(stats.queue_depth, 0, "drained queue");
    assert_eq!(stats.global.in_flight, 0, "nothing left in flight");
    assert_eq!(
        stats.global.admitted,
        stats.global.terminal_outcomes(),
        "every admitted request resolved exactly once"
    );
    let refused_records = records
        .iter()
        .filter(|r| matches!(r.outcome, Err(ServiceError::Refused(_))))
        .count() as u64;
    let nobackend_records = records
        .iter()
        .filter(|r| {
            matches!(
                r.outcome,
                Err(ServiceError::Solve(ModelError::NoQualifiedBackend { .. }))
            ) && r.effective.is_none()
        })
        .count() as u64;
    assert_eq!(
        stats.global.refused,
        refused_records + nobackend_records,
        "refusal counter matches observed refusals"
    );
    assert_eq!(
        stats.global.admitted as usize + refused_records as usize + nobackend_records as usize,
        total_submitted,
        "no request lost between admission and refusal"
    );

    // (b) quotas and verdicts: the capped tenant's Exact demands were
    // refused on the work gate; the premium and eco tenants saw
    // policy-driven degradations.
    assert!(refused_records >= 1, "expected at least one typed refusal");
    let degraded_count = records.iter().filter(|r| r.degraded).count();
    assert!(
        degraded_count >= 1,
        "expected at least one policy-driven degradation"
    );
    assert!(stats.tenant("capped").unwrap().refused >= 1);
    assert!(stats.tenant("premium").unwrap().degraded >= 1);
    assert!(stats.tenant("eco").unwrap().degraded >= 1);
    // Latency quantiles exist once work completed.
    assert!(stats.global.p50_latency.is_some());
    assert!(stats.global.p50_latency <= stats.global.p99_latency);

    // (a) bit-identity against direct portfolio solves at the effective
    // guarantee.
    let portfolio = Portfolio::standard();
    let mut compared = 0usize;
    for record in &records {
        let Some(effective) = record.effective else {
            continue;
        };
        let direct = portfolio.solve(&direct_request(&record.request, effective));
        match (&record.outcome, direct) {
            (Ok(served), Ok(direct)) => {
                assert_eq!(served.schedule, direct.schedule, "schedule must match");
                assert_eq!(served.point, direct.point);
                assert_eq!(served.stats.backend, direct.stats.backend);
                assert_eq!(served.stats.cost, direct.stats.cost);
                assert!(served.achieved.satisfies(&effective));
                compared += 1;
            }
            (Err(ServiceError::Solve(served_err)), Err(direct_err)) => {
                assert_eq!(served_err, &direct_err);
            }
            (served, direct) => {
                panic!("service and direct outcomes diverge: {served:?} vs {direct:?}")
            }
        }
    }
    assert!(
        compared >= 400,
        "expected most requests served and compared, got {compared}"
    );
}
