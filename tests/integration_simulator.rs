//! Integration test: the discrete-event simulator as an independent
//! referee — every schedule produced by any algorithm in the workspace
//! must replay cleanly, and the simulator must agree with the analytic
//! objective evaluation while rejecting corrupted schedules.

use sws_core::rls::{rls, RlsConfig};
use sws_core::sbo::{sbo, InnerAlgorithm, SboConfig};
use sws_core::tri::tri_objective_rls;
use sws_dag::DagInstance;
use sws_listsched::priority::hlf_priority;
use sws_listsched::{dag_list_schedule, graham_cmax, lpt_cmax, spt_schedule};
use sws_model::objectives::ObjectivePoint;
use sws_model::schedule::TimedSchedule;
use sws_model::Instance;
use sws_simulator::gantt::GanttOptions;
use sws_simulator::{render_gantt, simulate_assignment, simulate_dag_schedule, simulate_timed};
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::random::random_instance;
use sws_workloads::rng::seeded_rng;
use sws_workloads::TaskDistribution;

#[test]
fn every_independent_task_algorithm_replays_to_its_analytic_objectives() {
    let inst = random_instance(30, 4, TaskDistribution::Uncorrelated, &mut seeded_rng(31));
    let assignments = vec![
        ("graham", graham_cmax(&inst)),
        ("lpt", lpt_cmax(&inst)),
        (
            "sbo",
            sbo(&inst, &SboConfig::new(1.0, InnerAlgorithm::Lpt))
                .unwrap()
                .assignment,
        ),
    ];
    for (label, asg) in assignments {
        let analytic = ObjectivePoint::of_assignment(&inst, &asg);
        let sim = simulate_assignment(&inst, &asg, None).unwrap();
        assert!((sim.makespan - analytic.cmax).abs() < 1e-9, "{label}");
        assert!((sim.peak_memory - analytic.mmax).abs() < 1e-9, "{label}");
        assert!(
            sim.utilization > 0.0 && sim.utilization <= 1.0 + 1e-12,
            "{label}"
        );
        // Busy time conservation: the simulator accounts every task once.
        let busy: f64 = sim.busy.iter().sum();
        assert!((busy - inst.total_work()).abs() < 1e-9, "{label}");
    }
}

#[test]
fn timed_schedules_report_sum_completion_consistently() {
    let inst = random_instance(20, 3, TaskDistribution::Correlated, &mut seeded_rng(32));
    let spt = spt_schedule(&inst);
    let sim = simulate_timed(&inst, &spt, None).unwrap();
    assert!((sim.sum_completion - spt.sum_completion(inst.tasks())).abs() < 1e-9);

    let tri = tri_objective_rls(&inst, 3.0).unwrap();
    let sim = simulate_timed(&inst, &tri.rls.schedule, Some(tri.rls.memory_cap)).unwrap();
    assert!((sim.sum_completion - tri.point.sum_ci).abs() < 1e-9);
    assert!((sim.peak_memory - tri.point.mmax).abs() < 1e-9);
}

#[test]
fn dag_schedules_replay_with_precedence_checking() {
    let mut rng = seeded_rng(33);
    for family in [DagFamily::Lu, DagFamily::Fft, DagFamily::Erdos] {
        let inst = dag_workload(family, 80, 4, TaskDistribution::Uncorrelated, &mut rng);
        let graham = dag_list_schedule(&inst, &hlf_priority(inst.graph()));
        let restricted = rls(&inst, &RlsConfig::new(3.0)).unwrap();
        for (label, sched) in [("graham", &graham), ("rls", &restricted.schedule)] {
            let sim = simulate_dag_schedule(&inst, sched, None)
                .unwrap_or_else(|e| panic!("{}/{label}: {e}", family.label()));
            assert!((sim.makespan - sched.cmax(inst.tasks())).abs() < 1e-9);
            assert!(sim.trace.peak_concurrency() <= inst.m());
        }
    }
}

#[test]
fn the_simulator_rejects_corrupted_schedules() {
    // Overlap: two tasks at time 0 on the same processor.
    let inst = Instance::from_ps(&[2.0, 2.0], &[1.0, 1.0], 2).unwrap();
    let overlapping = TimedSchedule::new(vec![0, 0], vec![0.0, 0.5], 2).unwrap();
    assert!(simulate_timed(&inst, &overlapping, None).is_err());

    // Precedence violation: the successor starts before its predecessor
    // finishes.
    let dag = DagInstance::new(
        sws_dag::TaskGraph::from_edges(
            sws_model::task::TaskSet::from_ps(&[2.0, 2.0], &[1.0, 1.0]).unwrap(),
            &[(0, 1)],
        )
        .unwrap(),
        2,
    )
    .unwrap();
    let violating = TimedSchedule::new(vec![0, 1], vec![0.0, 1.0], 2).unwrap();
    assert!(simulate_dag_schedule(&dag, &violating, None).is_err());
    let legal = TimedSchedule::new(vec![0, 1], vec![0.0, 2.0], 2).unwrap();
    assert!(simulate_dag_schedule(&dag, &legal, None).is_ok());

    // Memory capacity violation.
    let heavy = Instance::from_ps(&[1.0, 1.0], &[4.0, 4.0], 1).unwrap();
    let packed = TimedSchedule::new(vec![0, 0], vec![0.0, 1.0], 1).unwrap();
    assert!(simulate_timed(&heavy, &packed, Some(10.0)).is_ok());
    assert!(simulate_timed(&heavy, &packed, Some(7.0)).is_err());
}

#[test]
fn memory_profiles_track_cumulative_allocation_over_time() {
    let inst = Instance::from_ps(&[1.0, 1.0, 1.0], &[2.0, 3.0, 4.0], 1).unwrap();
    let sched = TimedSchedule::new(vec![0, 0, 0], vec![0.0, 1.0, 2.0], 1).unwrap();
    let sim = simulate_timed(&inst, &sched, None).unwrap();
    // Cumulative memory: 2 after the first start, 5 after the second, 9 at
    // the end (code/results are never freed in the paper's model).
    assert!((sim.memory_profile.level_at(0, 0.5) - 2.0).abs() < 1e-9);
    assert!((sim.memory_profile.level_at(0, 1.5) - 5.0).abs() < 1e-9);
    assert!((sim.peak_memory - 9.0).abs() < 1e-9);
    assert_eq!(sim.trace.len(), 6, "three start and three finish events");
}

#[test]
fn gantt_rendering_shows_every_task_and_processor() {
    let inst = random_instance(12, 3, TaskDistribution::Bimodal, &mut seeded_rng(34));
    let asg = lpt_cmax(&inst);
    let gantt = render_gantt(
        inst.tasks(),
        &asg.into_timed(inst.tasks()),
        &GanttOptions::default(),
    );
    for t in 0..inst.n() {
        assert!(
            gantt.contains(&format!("t{t}")),
            "task {t} missing from the Gantt chart"
        );
    }
    assert!(gantt.lines().count() >= inst.m());
}
