//! Integration test: the full RLS∆ pipeline across crates — DAG
//! generation, the restricted list scheduler, the simulator's independent
//! feasibility re-check and the experiment harness.

use sws_bench::e2_rls::{run as run_e2, E2Config};
use sws_core::pipeline::evaluate_rls;
use sws_core::rls::{lemma4_marked_bound, rls, rls_independent, PriorityOrder, RlsConfig};
use sws_dag::{DagInstance, TaskGraph};
use sws_listsched::dag_list_schedule;
use sws_listsched::priority::index_priority;
use sws_model::bounds::{cmax_lower_bound_prec, mmax_lower_bound};
use sws_model::objectives::ObjectivePoint;
use sws_model::validate::validate_timed;
use sws_model::Instance;
use sws_simulator::simulate_dag_schedule;
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::rng::seeded_rng;
use sws_workloads::TaskDistribution;

#[test]
fn rls_schedules_every_dag_family_feasibly_and_caps_memory() {
    let mut rng = seeded_rng(21);
    for family in DagFamily::all() {
        let inst = dag_workload(family, 100, 4, TaskDistribution::Bimodal, &mut rng);
        for &delta in &[2.25, 3.0, 6.0] {
            let result = rls(&inst, &RlsConfig::new(delta)).unwrap();
            validate_timed(
                inst.tasks(),
                inst.m(),
                &result.schedule,
                inst.graph().all_preds(),
                Some(delta * result.lb),
            )
            .unwrap_or_else(|e| panic!("{}: ∆ = {delta}: {e}", family.label()));
            // The simulator re-checks precedence and memory independently.
            let sim = simulate_dag_schedule(&inst, &result.schedule, Some(delta * result.lb))
                .unwrap_or_else(|e| {
                    panic!("{}: simulator rejected the schedule: {e}", family.label())
                });
            assert!((sim.makespan - result.schedule.cmax(inst.tasks())).abs() < 1e-9);
        }
    }
}

#[test]
fn corollary_2_and_3_hold_across_the_grid() {
    let mut rng = seeded_rng(22);
    for family in [DagFamily::LayeredRandom, DagFamily::Fft, DagFamily::Diamond] {
        for &m in &[2usize, 4, 8] {
            let inst = dag_workload(family, 120, m, TaskDistribution::Uncorrelated, &mut rng);
            let cp = inst.graph().critical_path_length();
            let lb_c = cmax_lower_bound_prec(inst.tasks(), m, cp);
            let lb_m = mmax_lower_bound(inst.tasks(), m);
            for &delta in &[2.5, 3.0, 4.0] {
                let result = rls(&inst, &RlsConfig::new(delta)).unwrap();
                let point = ObjectivePoint::of_timed_tasks(inst.tasks(), &result.schedule);
                let (gc, gm) = result.guarantee;
                assert!(
                    point.cmax <= gc * lb_c + 1e-9,
                    "{} m={m} ∆={delta}",
                    family.label()
                );
                assert!(
                    point.mmax <= gm * lb_m + 1e-9,
                    "{} m={m} ∆={delta}",
                    family.label()
                );
                assert!(result.marked_count() <= lemma4_marked_bound(m, delta));
            }
        }
    }
}

#[test]
fn restriction_costs_at_most_the_proven_factor_over_the_unrestricted_baseline() {
    // RLS∆ can be slower than plain Graham list scheduling (it refuses
    // memory-heavy placements), but never beyond the proven ratio between
    // their respective bounds.
    let mut rng = seeded_rng(23);
    let inst = dag_workload(
        DagFamily::LayeredRandom,
        150,
        6,
        TaskDistribution::AntiCorrelated,
        &mut rng,
    );
    let baseline = dag_list_schedule(&inst, &index_priority(inst.n()));
    let baseline_cmax = baseline.cmax(inst.tasks());
    for &delta in &[2.25, 3.0, 10.0] {
        let result = rls(&inst, &RlsConfig::new(delta)).unwrap();
        let cmax = result.schedule.cmax(inst.tasks());
        let (gc, _) = result.guarantee;
        // Both are ≥ LB, and RLS is within gc·LB, so it is within
        // gc × the baseline as well.
        assert!(cmax <= gc * baseline_cmax + 1e-9, "∆ = {delta}");
    }
    // With an effectively unlimited cap the two coincide.
    let unlimited = rls(&inst, &RlsConfig::new(1e9)).unwrap();
    assert!((unlimited.schedule.cmax(inst.tasks()) - baseline_cmax).abs() < 1e-9);
}

#[test]
fn independent_tasks_are_a_special_case_of_the_dag_path() {
    let inst = Instance::from_ps(
        &[4.0, 2.0, 9.0, 3.0, 7.0, 1.0, 5.0],
        &[3.0, 8.0, 1.0, 6.0, 2.0, 9.0, 4.0],
        3,
    )
    .unwrap();
    let via_instance = rls_independent(&inst, &RlsConfig::new(2.5)).unwrap();
    let dag = DagInstance::new(TaskGraph::new(inst.tasks().clone()), 3).unwrap();
    let via_dag = rls(&dag, &RlsConfig::new(2.5)).unwrap();
    assert_eq!(via_instance.schedule, via_dag.schedule);
    assert_eq!(via_instance.marked, via_dag.marked);
}

#[test]
fn all_priority_orders_meet_the_same_guarantees() {
    let mut rng = seeded_rng(24);
    let inst = dag_workload(
        DagFamily::GaussianElimination,
        90,
        4,
        TaskDistribution::Correlated,
        &mut rng,
    );
    for order in PriorityOrder::all() {
        let (report, result) = evaluate_rls(&inst, &RlsConfig::new(3.0).with_order(order)).unwrap();
        assert!(
            report.within_guarantee(),
            "order {}: {}",
            order.label(),
            report.summary_line()
        );
        assert!(result.marked_count() <= result.marked_bound());
    }
}

#[test]
fn the_e2_experiment_harness_reports_guarantees_respected() {
    let rows = run_e2(&E2Config::smoke());
    assert!(!rows.is_empty());
    for row in &rows {
        assert!(row.within_guarantee, "{row:?}");
        assert!(row.mmax_ratio <= row.delta + 1e-9);
        assert!(row.marked_mean <= row.marked_bound as f64 + 1e-9);
    }
}
