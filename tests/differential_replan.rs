//! Differential tests: the incremental delta-replan engine
//! (`sws_core::replan::ReplanEngine`) against a from-scratch oracle and
//! the discrete-event simulator.
//!
//! The engine claims *bit-identity*: after every applied [`CsrDelta`]
//! the warm-started schedule, objective point, guarantee and ratio
//! bound equal — bit for bit — what [`solve_from_scratch`] produces on
//! the mutated instance. This suite drives that claim over the
//! stateful delta streams of `sws_workloads::deltas` (arrivals with
//! sampled predecessors, in-order completions, cost re-estimates,
//! including the adversarial signed-zero and rank-saturating draws),
//! replays the resulting schedules through the simulator as an
//! independent semantic oracle, and pins down that the pre-existing
//! cap-resume machinery ([`CheckpointedRun`]) is unchanged.

use std::sync::Arc;

use proptest::prelude::*;

use sws_core::replan::{solve_from_scratch, ReplanEngine};
use sws_dag::{CsrDag, CsrDelta, DagInstance};
use sws_listsched::kernel::{CheckpointedRun, KernelWorkspace};
use sws_listsched::priority::index_priority;
use sws_model::error::ModelError;
use sws_model::solve::Solution;
use sws_model::task::TaskSet;
use sws_simulator::SimulationEngine;
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::deltas::{delta_stream, DeltaStreamConfig};
use sws_workloads::rng::{derive_seed, seeded_rng};
use sws_workloads::TaskDistribution;

const DIFF_SEED: u64 = 0xDE17A;

fn base_csr(family: DagFamily, n: usize, m: usize, stream: u64) -> CsrDag {
    let mut rng = seeded_rng(derive_seed(DIFF_SEED, stream));
    dag_workload(family, n, m, TaskDistribution::AntiCorrelated, &mut rng).csr()
}

/// Field-by-field bit-identity: `PartialEq` on the schedule would let
/// `-0.0 == 0.0` slip through, so start times and objectives compare
/// through `to_bits`.
fn assert_bit_identical(warm: &Solution, cold: &Solution, ctx: &str) {
    assert_eq!(warm.schedule.n(), cold.schedule.n(), "{ctx}: task counts");
    for i in 0..warm.schedule.n() {
        assert_eq!(
            warm.schedule.proc_of(i),
            cold.schedule.proc_of(i),
            "{ctx}: task {i} placed on different processors"
        );
        assert_eq!(
            warm.schedule.start(i).to_bits(),
            cold.schedule.start(i).to_bits(),
            "{ctx}: task {i} starts differ ({} vs {})",
            warm.schedule.start(i),
            cold.schedule.start(i)
        );
    }
    assert_eq!(
        warm.point.cmax.to_bits(),
        cold.point.cmax.to_bits(),
        "{ctx}: cmax differs"
    );
    assert_eq!(
        warm.point.mmax.to_bits(),
        cold.point.mmax.to_bits(),
        "{ctx}: mmax differs"
    );
    assert_eq!(warm.achieved, cold.achieved, "{ctx}: guarantee differs");
    assert_eq!(warm.ratio_bound, cold.ratio_bound, "{ctx}: ratio differs");
}

/// Replays `solution`'s schedule on the simulator against the mutated
/// instance — the independent semantic oracle: no overlaps, no
/// precedence violations, cap respected, objectives consistent.
fn simulate(csr: &CsrDag, m: usize, cap: Option<f64>, solution: &Solution, ctx: &str) {
    let tasks = TaskSet::from_ps(csr.proc_times(), csr.mem_sizes()).unwrap();
    let preds: Vec<Vec<usize>> = (0..csr.n())
        .map(|i| csr.preds(i).iter().map(|&u| u as usize).collect())
        .collect();
    let report = SimulationEngine::new()
        .replay(&tasks, m, &solution.schedule, &preds, cap)
        .unwrap_or_else(|e| panic!("{ctx}: simulator rejected the replanned schedule: {e}"));
    let tol = |x: f64| 1e-9 * x.abs().max(1.0);
    assert!(
        (report.makespan - solution.point.cmax).abs() <= tol(solution.point.cmax),
        "{ctx}: simulated makespan {} vs reported cmax {}",
        report.makespan,
        solution.point.cmax
    );
    assert!(
        (report.peak_memory - solution.point.mmax).abs() <= tol(solution.point.mmax),
        "{ctx}: simulated peak memory {} vs reported mmax {}",
        report.peak_memory,
        solution.point.mmax
    );
    // The allocation-free trace iterators see every task exactly twice
    // (start + finish) and each processor's events in time order.
    for i in 0..csr.n() {
        assert_eq!(
            report.trace.for_task(i).count(),
            2,
            "{ctx}: task {i} events"
        );
    }
    for q in 0..m {
        let mut last = f64::NEG_INFINITY;
        for ev in report.trace.for_processor(q) {
            assert!(ev.time >= last, "{ctx}: processor {q} trace out of order");
            last = ev.time;
        }
    }
}

/// The engine vs the from-scratch oracle over one stream, every event,
/// through ONE shared oracle workspace. Returns the final solution for
/// further checks.
fn drive_stream(
    csr: CsrDag,
    m: usize,
    cap: Option<f64>,
    stream: &[CsrDelta],
    ws: &mut KernelWorkspace,
    ctx: &str,
) -> Solution {
    let mut engine = ReplanEngine::open(csr, m, cap).unwrap();
    let mut last = engine.solution();
    for (k, delta) in stream.iter().enumerate() {
        let warm = engine
            .apply(delta)
            .unwrap_or_else(|e| panic!("{ctx} event {k}: engine refused {delta:?}: {e}"));
        let cold = solve_from_scratch(engine.csr(), m, cap, ws)
            .unwrap_or_else(|e| panic!("{ctx} event {k}: oracle failed: {e}"));
        assert_bit_identical(&warm, &cold, &format!("{ctx} event {k}"));
        last = warm;
    }
    last
}

/// Uncapped sessions: bit-identity across all three stream shapes
/// (serving, mixed, adversarial) and several DAG families, with a
/// simulator replay of the final schedule. The adversarial streams
/// carry `-0.0` storage, `0.0` processing and ≥ 1e290 rank-saturating
/// costs — exactly the draws the quantized key table must survive.
#[test]
fn replan_tracks_from_scratch_bit_for_bit_across_stream_shapes() {
    let mut ws = KernelWorkspace::new();
    let configs = [
        ("serving", DeltaStreamConfig::arrivals_and_completions()),
        ("mixed", DeltaStreamConfig::mixed()),
        ("adversarial", DeltaStreamConfig::adversarial()),
    ];
    let mut stream_id = 0u64;
    for (label, cfg) in configs {
        for family in [DagFamily::LayeredRandom, DagFamily::ForkJoin] {
            for &m in &[2usize, 4] {
                stream_id += 1;
                let csr = base_csr(family, 32, m, stream_id);
                let deltas = delta_stream(
                    csr.n(),
                    120,
                    &cfg,
                    &mut seeded_rng(derive_seed(DIFF_SEED, 1000 + stream_id)),
                );
                let ctx = format!("{label}/{} m={m}", family.label());
                let last = drive_stream(csr, m, None, &deltas, &mut ws, &ctx);
                // Adversarial magnitudes make float tolerances
                // meaningless for the semantic replay; bit-identity
                // above already covers those streams.
                if label != "adversarial" {
                    let mut probe = base_csr(family, 32, m, stream_id);
                    for d in &deltas {
                        probe.apply_delta(d).unwrap();
                    }
                    simulate(&probe, m, None, &last, &ctx);
                }
            }
        }
    }
}

/// A cap every prefix of the stream can satisfy: first-fit packs into
/// per-processor budgets of `s_sum/m + s_max`, so track the running
/// worst case over all prefixes of the mutated instance.
fn feasible_cap(csr: &CsrDag, stream: &[CsrDelta], m: usize) -> f64 {
    let mut probe = csr.clone();
    let stats = |c: &CsrDag| {
        let sum: f64 = c.mem_sizes().iter().sum();
        let max = c.mem_sizes().iter().copied().fold(0.0, f64::max);
        sum / m as f64 + max
    };
    let mut cap = stats(&probe);
    for d in stream {
        probe.apply_delta(d).unwrap();
        cap = cap.max(stats(&probe));
    }
    cap
}

/// Capped sessions: same bit-identity, plus the simulator confirms the
/// cap is actually respected by every replayed schedule.
#[test]
fn capped_replan_tracks_from_scratch_and_respects_the_cap() {
    let mut ws = KernelWorkspace::new();
    for &m in &[2usize, 4] {
        let csr = base_csr(DagFamily::LayeredRandom, 24, m, 40 + m as u64);
        let deltas = delta_stream(
            csr.n(),
            80,
            &DeltaStreamConfig::mixed(),
            &mut seeded_rng(derive_seed(DIFF_SEED, 2000 + m as u64)),
        );
        let cap = feasible_cap(&csr, &deltas, m);
        let ctx = format!("capped m={m}");
        let last = drive_stream(csr.clone(), m, Some(cap), &deltas, &mut ws, &ctx);
        let mut probe = csr;
        for d in &deltas {
            probe.apply_delta(d).unwrap();
        }
        simulate(&probe, m, Some(cap), &last, &ctx);
    }
}

/// Errors converge too: when an arrival makes a capped session
/// infeasible, the engine and the from-scratch oracle fail with the
/// same `MemoryExceeded`, and the engine recovers once a re-estimate
/// shrinks the offending task back under the cap.
#[test]
fn capped_infeasibility_strikes_engine_and_oracle_alike() {
    let csr = base_csr(DagFamily::LayeredRandom, 12, 2, 77);
    let cap = feasible_cap(&csr, &[], 2) * 2.0;
    let mut engine = ReplanEngine::open(csr, 2, Some(cap)).unwrap();
    let mut ws = KernelWorkspace::new();

    let huge = CsrDelta::AddTask {
        preds: vec![0, 3],
        p: 1.0,
        s: 4.0 * cap,
    };
    let err = engine.apply(&huge).unwrap_err();
    assert!(matches!(err, ModelError::MemoryExceeded { .. }), "{err}");
    let oracle_err = solve_from_scratch(engine.csr(), 2, Some(cap), &mut ws).unwrap_err();
    assert_eq!(err, oracle_err, "engine and oracle must fail identically");

    // Shrinking the task under the cap restores service, still in
    // lockstep with the oracle.
    let shrink = CsrDelta::Recost {
        task: (engine.n() - 1) as u32,
        p: None,
        s: Some(1.0),
    };
    let warm = engine.apply(&shrink).unwrap();
    let cold = solve_from_scratch(engine.csr(), 2, Some(cap), &mut ws).unwrap();
    assert_bit_identical(&warm, &cold, "post-recovery");
}

/// Completions pin the schedule: the cached solution is returned
/// unchanged (zero rounds), and the oracle on the unchanged instance
/// agrees.
#[test]
fn completions_answer_from_cache_and_stay_bit_identical() {
    let csr = base_csr(DagFamily::LayeredRandom, 16, 4, 90);
    let mut engine = ReplanEngine::open(csr.clone(), 4, None).unwrap();
    let mut ws = KernelWorkspace::new();
    for t in 0..4u32 {
        let warm = engine.apply(&CsrDelta::CompleteTask { task: t }).unwrap();
        assert_eq!(warm.stats.rounds, 0, "completion must replay nothing");
        let cold = solve_from_scratch(&csr, 4, None, &mut ws).unwrap();
        assert_bit_identical(&warm, &cold, "completion");
    }
    assert_eq!(engine.replayed_rounds(), 0);
}

/// Regression pin for the pre-existing cap-resume machinery: a
/// [`CheckpointedRun`] warm-resumed through increasing caps stays
/// bit-identical to cold runs at each cap — the delta-replan layer must
/// not have disturbed it.
#[test]
fn checkpointed_cap_resume_behaviour_is_unchanged() {
    let mut rng = seeded_rng(derive_seed(DIFF_SEED, 3000));
    let inst: DagInstance = dag_workload(
        DagFamily::LayeredRandom,
        48,
        4,
        TaskDistribution::AntiCorrelated,
        &mut rng,
    );
    let s_sum: f64 = (0..inst.n()).map(|i| inst.tasks().get(i).s).sum();
    let s_max = (0..inst.n())
        .map(|i| inst.tasks().get(i).s)
        .fold(0.0, f64::max);
    let lb = s_sum / 4.0 + s_max;
    let rank = Arc::new(index_priority(inst.n()));
    let mut chain = CheckpointedRun::cold(&inst, Arc::clone(&rank), lb).unwrap();
    for &factor in &[1.25, 1.5, 3.0, 50.0] {
        let cap = factor * lb;
        chain = chain.resume(cap).unwrap();
        let cold = CheckpointedRun::cold(&inst, Arc::clone(&rank), cap).unwrap();
        assert_eq!(
            chain.outcome().schedule,
            cold.outcome().schedule,
            "cap factor {factor}"
        );
        for i in 0..inst.n() {
            assert_eq!(
                chain.outcome().schedule.start(i).to_bits(),
                cold.outcome().schedule.start(i).to_bits(),
                "cap factor {factor}: task {i}"
            );
        }
        assert_eq!(
            chain.outcome().marked,
            cold.outcome().marked,
            "cap factor {factor}"
        );
        assert!(chain.replayed_rounds() <= inst.n());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property form of the bit-identity claim: random seeds, sizes,
    /// processor counts and stream shapes (benign and adversarial),
    /// every event checked against the from-scratch oracle through one
    /// shared workspace.
    #[test]
    fn replan_equals_from_scratch_on_random_streams(
        seed in 0u64..1 << 48,
        n0 in 4usize..32,
        m in 2usize..6,
        events in 1usize..48,
        adversarial in any::<bool>(),
    ) {
        let cfg = if adversarial {
            DeltaStreamConfig::adversarial()
        } else {
            DeltaStreamConfig::mixed()
        };
        let csr = base_csr(DagFamily::LayeredRandom, n0, m, seed);
        let deltas = delta_stream(csr.n(), events, &cfg, &mut seeded_rng(seed ^ 0xA5A5));
        let mut ws = KernelWorkspace::new();
        drive_stream(
            csr,
            m,
            None,
            &deltas,
            &mut ws,
            &format!("prop seed={seed} n0={n0} m={m} adversarial={adversarial}"),
        );
    }
}
