//! Integration test: the full SBO∆ pipeline across crates — workload
//! generation (`sws-workloads`), inner schedulers (`sws-listsched`,
//! `sws-ptas`), the algorithm (`sws-core`), exact references
//! (`sws-exact`), simulation (`sws-simulator`) and the experiment harness
//! (`sws-bench`).

use sws_bench::e1_sbo::{run as run_e1, E1Config};
use sws_core::pipeline::evaluate_sbo;
use sws_core::sbo::{corollary1_guarantee, sbo, InnerAlgorithm, SboConfig};
use sws_exact::branch_bound::{optimal_cmax, optimal_mmax};
use sws_model::objectives::ObjectivePoint;
use sws_model::validate::validate_assignment;
use sws_model::Instance;
use sws_simulator::simulate_assignment;
use sws_workloads::random::random_instance;
use sws_workloads::rng::seeded_rng;
use sws_workloads::TaskDistribution;

fn anti_correlated(n: usize, m: usize, seed: u64) -> Instance {
    random_instance(
        n,
        m,
        TaskDistribution::AntiCorrelated,
        &mut seeded_rng(seed),
    )
}

#[test]
fn sbo_schedules_are_feasible_and_simulate_to_the_same_objectives() {
    for seed in 0..5u64 {
        let inst = anti_correlated(40, 4, seed);
        for inner in [
            InnerAlgorithm::Graham,
            InnerAlgorithm::Lpt,
            InnerAlgorithm::Multifit,
        ] {
            for &delta in &[0.25, 1.0, 4.0] {
                let result = sbo(&inst, &SboConfig::new(delta, inner)).unwrap();
                validate_assignment(&inst, &result.assignment, None).unwrap();
                let analytic = result.objective(&inst);
                let sim = simulate_assignment(&inst, &result.assignment, None).unwrap();
                assert!((sim.makespan - analytic.cmax).abs() < 1e-9);
                assert!((sim.peak_memory - analytic.mmax).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn properties_1_and_2_hold_against_the_exact_optima() {
    // On instances small enough for branch and bound, the guarantee
    // ((1+∆)ρ1, (1+1/∆)ρ2) is verified against the true optima.
    for seed in 0..6u64 {
        let inst = anti_correlated(10, 3, seed);
        let c_star = optimal_cmax(&inst);
        let m_star = optimal_mmax(&inst);
        for &delta in &[0.5, 1.0, 2.0] {
            let result = sbo(&inst, &SboConfig::new(delta, InnerAlgorithm::Lpt)).unwrap();
            let point = result.objective(&inst);
            let (gc, gm) = result.guarantee;
            assert!(point.cmax <= gc * c_star + 1e-9, "seed {seed} ∆ {delta}");
            assert!(point.mmax <= gm * m_star + 1e-9, "seed {seed} ∆ {delta}");
        }
    }
}

#[test]
fn corollary_1_with_the_ptas_inner_algorithm() {
    // The (1 + ∆ + ε, 1 + 1/∆ + ε) family of Corollary 1: the PTAS-backed
    // SBO must respect the headline guarantee against the exact optima.
    let eps = 0.25;
    for seed in 0..3u64 {
        let inst = anti_correlated(12, 2, seed);
        let c_star = optimal_cmax(&inst);
        let m_star = optimal_mmax(&inst);
        for &delta in &[0.5, 1.0, 2.0] {
            let result = sbo(&inst, &SboConfig::corollary1(delta, eps)).unwrap();
            let point = result.objective(&inst);
            let (gc, gm) = corollary1_guarantee(delta, eps);
            assert!(
                point.cmax <= gc * c_star + 1e-9,
                "seed {seed} ∆ {delta}: {} > {gc}·{c_star}",
                point.cmax
            );
            assert!(
                point.mmax <= gm * m_star + 1e-9,
                "seed {seed} ∆ {delta}: {} > {gm}·{m_star}",
                point.mmax
            );
        }
    }
}

#[test]
fn the_symmetry_of_the_independent_task_problem_is_preserved() {
    // Swapping p and s and replacing ∆ by 1/∆ mirrors the objective point
    // (Section 2.1: with independent tasks the objectives are exchangeable).
    let inst = anti_correlated(30, 3, 11);
    for &delta in &[0.25, 1.0, 4.0] {
        let a = sbo(&inst, &SboConfig::new(delta, InnerAlgorithm::Graham)).unwrap();
        let b = sbo(
            &inst.swapped(),
            &SboConfig::new(1.0 / delta, InnerAlgorithm::Graham),
        )
        .unwrap();
        let pa = a.objective(&inst);
        let pb = b.objective(&inst.swapped());
        assert!((pa.cmax - pb.mmax).abs() < 1e-9);
        assert!((pa.mmax - pb.cmax).abs() < 1e-9);
    }
}

#[test]
fn extreme_deltas_recover_the_single_objective_schedules() {
    let inst = anti_correlated(25, 4, 13);
    let tiny = sbo(&inst, &SboConfig::new(1e-9, InnerAlgorithm::Lpt)).unwrap();
    assert_eq!(tiny.assignment, tiny.pi1);
    let huge = sbo(&inst, &SboConfig::new(1e9, InnerAlgorithm::Lpt)).unwrap();
    assert_eq!(huge.assignment, huge.pi2);
    // And the corresponding objectives coincide with the dedicated
    // single-objective runs.
    let lpt_c = ObjectivePoint::of_assignment(&inst, &sws_listsched::lpt_cmax(&inst));
    assert!(
        (ObjectivePoint::of_assignment(&inst, &tiny.assignment).cmax - lpt_c.cmax).abs() < 1e-9
    );
}

#[test]
fn the_e1_experiment_harness_reports_guarantees_respected() {
    let rows = run_e1(&E1Config::smoke());
    assert!(!rows.is_empty());
    assert!(rows.iter().all(|r| r.within_guarantee));
    // The evaluation pipeline agrees with a direct call on one cell.
    let inst = anti_correlated(12, 2, 99);
    let (report, result) = evaluate_sbo(&inst, &SboConfig::new(1.0, InnerAlgorithm::Lpt)).unwrap();
    assert_eq!(report.point, result.objective(&inst));
    assert!(report.within_guarantee());
}
