//! Integration test: the figure-regeneration pipeline reproduces the
//! paper's Figures 1–3 — the exact Pareto fronts of the adversarial
//! instances, the impossibility staircases and the SBO trade-off curve.

use sws_bench::figures::{figure1, figure2, figure3};
use sws_core::bounds::{
    impossibility_frontier, lemma1_points, lemma2_point, lemma3_point, violates_impossibility,
};
use sws_core::sbo::{sbo, sbo_guarantee, InnerAlgorithm, SboConfig};
use sws_exact::pareto_enum::pareto_front;
use sws_workloads::adversarial::{lemma2_instance, lemma2_pareto_point};
use sws_workloads::lemma1_instance;

#[test]
fn figure_1_pareto_points_match_the_paper() {
    let fig = figure1(1e-3);
    assert_eq!(
        fig.entries.len(),
        2,
        "Figure 1 has exactly two Pareto schedules"
    );
    assert!(fig.matches_paper(1e-9));
    // Gantt charts show both processors and all three tasks.
    for entry in &fig.entries {
        for t in 0..3 {
            assert!(
                entry.gantt.contains(&format!("t{t}")),
                "missing task {t} in Gantt"
            );
        }
    }
}

#[test]
fn figure_2_pareto_points_match_the_paper() {
    for &eps in &[0.1, 0.25, 0.4] {
        let fig = figure2(eps);
        assert_eq!(
            fig.entries.len(),
            3,
            "Figure 2 has exactly three Pareto schedules"
        );
        assert!(fig.matches_paper(1e-9), "eps = {eps}");
    }
}

#[test]
fn figure_3_series_are_complete_and_consistent() {
    let fig = figure3(6, 64, 0.125, 8.0);
    // One staircase per m in 2..=6, plus the Lemma 3 point and SBO curve.
    assert_eq!(fig.series.len(), 5 + 2);
    assert!(fig.sbo_curve_outside_domain(6, 64));
    // Every staircase starts at (1, m) and ends at (1 + 1/m, 1).
    for m in 2..=6usize {
        let staircase = impossibility_frontier(m, 64);
        assert_eq!(staircase[0], (1.0, m as f64));
        assert!((staircase[64].0 - (1.0 + 1.0 / m as f64)).abs() < 1e-12);
        assert_eq!(staircase[64].1, 1.0);
    }
}

#[test]
fn lemma_2_points_agree_with_the_adversarial_instance_geometry() {
    // The executable bound family and the instance generator must tell the
    // same story: each Lemma 2 ratio pair is an actual Pareto point of the
    // corresponding instance normalized by the optima (1, k + ε).
    let (m, k, eps) = (2usize, 3usize, 1e-9);
    let inst = lemma2_instance(m, k, eps);
    let front = pareto_front(&inst);
    assert_eq!(
        front.len(),
        k + 1,
        "the paper counts k + 1 Pareto schedules"
    );
    for i in 0..=k {
        let (pc, pm) = lemma2_pareto_point(m, k, i, eps);
        assert!(
            front
                .iter()
                .any(|(pt, _)| (pt.cmax - pc).abs() < 1e-9 && (pt.mmax - pm).abs() < 1e-6),
            "Pareto point for i = {i} not found in the enumerated front"
        );
        let (rc, rm) = lemma2_point(m, k, i);
        assert!(
            (rc - pc).abs() < 1e-9,
            "Cmax ratio (C* = 1) must equal the Pareto makespan"
        );
        if i < k {
            assert!((rm - pm / k as f64).abs() < 1e-6);
        }
    }
}

#[test]
fn lemma_1_and_3_claims_hold_on_their_instances() {
    // Lemma 1: on the Figure 1 instance no schedule has Cmax < 3/2·C* and
    // Mmax < 2·M* simultaneously beyond the stated corners.
    let eps = 1e-3;
    let inst = lemma1_instance(eps);
    let front = pareto_front(&inst);
    let (c_star, m_star) = (1.0, 1.0 + eps);
    for (pt, _) in front.iter() {
        let beats_1_2 = pt.cmax < c_star - 1e-12 && pt.mmax < 2.0 * m_star - 1e-12;
        assert!(
            !beats_1_2,
            "a schedule strictly better than (1, 2) exists: {pt}"
        );
    }
    assert_eq!(lemma1_points(), [(1.0, 2.0), (2.0, 1.0)]);
    assert_eq!(lemma3_point(), (1.5, 1.5));
    assert!(violates_impossibility(1.45, 1.45, 2, 2));
}

#[test]
fn sbo_achieved_points_on_the_adversarial_instances_respect_the_theory() {
    // Running the actual algorithm on the Figure 1 instance: whatever ∆ is
    // chosen, the achieved point is a real schedule of the instance and
    // must therefore be (weakly) dominated by the exact Pareto front. The
    // *guarantee* curve, which is a worst-case claim over all instances,
    // must stay outside the impossibility domain.
    let inst = lemma1_instance(1e-3);
    let front = pareto_front(&inst);
    for &delta in &[0.1, 0.5, 1.0, 2.0, 10.0] {
        let result = sbo(&inst, &SboConfig::new(delta, InnerAlgorithm::Lpt)).unwrap();
        let point = result.objective(&inst);
        assert!(
            front.covers(&point),
            "∆ = {delta}: achieved {point} not covered by the exact front"
        );
        let (gc, gm) = sbo_guarantee(delta, 1.0, 1.0);
        assert!(
            !violates_impossibility(gc, gm, 6, 64),
            "∆ = {delta}: the guarantee ({gc}, {gm}) is claimed impossible"
        );
    }
}
