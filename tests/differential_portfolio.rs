//! Differential coverage of the unified solver layer.
//!
//! Three contracts (the PR 4 acceptance criteria):
//!
//! 1. every backend's [`Solution`] validates through `sws_model::validate`
//!    and reports an achieved guarantee satisfying the requested one;
//! 2. declared guarantees hold on the adversarial workloads — checked
//!    against exact optima on instances small enough to enumerate;
//! 3. [`Portfolio::solve`] is bit-identical to calling the selected
//!    backend directly (including through a shared [`KernelWorkspace`]
//!    stream), and the kernel-backend path is bit-identical to the
//!    pre-refactor `rls`/`rls_in`/`sbo`/`tri_objective_rls` entry
//!    points.

use sws_core::portfolio::Portfolio;
use sws_core::rls::{rls, rls_in, RlsConfig};
use sws_core::sbo::{sbo, InnerAlgorithm, SboConfig};
use sws_core::tri::tri_objective_rls;
use sws_dag::DagInstance;
use sws_exact::branch_bound::{optimal_cmax, optimal_mmax};
use sws_listsched::KernelWorkspace;
use sws_model::bounds::mmax_lower_bound;
use sws_model::error::ModelError;
use sws_model::solve::{BackendId, Guarantee, ObjectiveMode, Solution, SolveRequest};
use sws_model::validate::validate_timed;
use sws_model::Instance;
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::random::random_instance;
use sws_workloads::rng::seeded_rng;
use sws_workloads::{lemma1_instance, lemma2_instance, lemma3_instance, TaskDistribution};

const TOL: f64 = 1e-9;

/// Adversarial and random independent instances small enough for the
/// exact solvers — the workloads every declared guarantee is checked on.
fn small_adversarial_instances() -> Vec<Instance> {
    let mut out = vec![
        lemma1_instance(1e-3),
        lemma2_instance(2, 2, 1e-3),
        lemma3_instance(0.25),
    ];
    for seed in 0..4u64 {
        out.push(random_instance(
            9,
            3,
            TaskDistribution::AntiCorrelated,
            &mut seeded_rng(900 + seed),
        ));
        out.push(random_instance(
            10,
            2,
            TaskDistribution::Bimodal,
            &mut seeded_rng(950 + seed),
        ));
    }
    out
}

fn validate_independent(inst: &Instance, solution: &Solution) {
    let preds: Vec<Vec<usize>> = vec![Vec::new(); inst.n()];
    validate_timed(inst.tasks(), inst.m(), &solution.schedule, &preds, None).unwrap_or_else(|e| {
        panic!(
            "backend {} produced an invalid schedule: {e}",
            solution.stats.backend
        )
    });
}

/// Requests that collectively exercise every auto-selectable backend on
/// an independent instance.
fn independent_requests(inst: &Instance) -> Vec<SolveRequest<'_>> {
    vec![
        SolveRequest::independent(inst, ObjectiveMode::CmaxOnly),
        SolveRequest::independent(inst, ObjectiveMode::CmaxOnly).with_guarantee(Guarantee::Exact),
        SolveRequest::independent(inst, ObjectiveMode::CmaxOnly)
            .with_guarantee(Guarantee::EpsilonOptimal(0.25)),
        SolveRequest::independent(inst, ObjectiveMode::BiObjective { delta: 1.0 }),
        SolveRequest::independent(inst, ObjectiveMode::BiObjective { delta: 3.0 })
            .with_guarantee(Guarantee::PaperRatio),
        SolveRequest::independent(inst, ObjectiveMode::TriObjective { delta: 3.0 }),
        SolveRequest::independent(
            inst,
            ObjectiveMode::MemoryBudget {
                budget: inst.total_storage(),
            },
        ),
    ]
}

/// Contract 1: every backend that serves a request returns a feasible,
/// complete schedule whose achieved guarantee satisfies the requested
/// one — checked for every registered backend, not just the selected
/// ones (the naive oracle and the never-preferred heuristics included).
#[test]
fn every_backend_solution_validates_and_satisfies_its_request() {
    let portfolio = Portfolio::standard();
    let inst = random_instance(
        12,
        3,
        TaskDistribution::AntiCorrelated,
        &mut seeded_rng(2024),
    );
    let mut exercised = Vec::new();
    for req in independent_requests(&inst) {
        for id in portfolio.backend_ids() {
            let backend = portfolio.backend(id).unwrap();
            if backend.bid(&req).is_none() {
                continue;
            }
            let solution = backend
                .solve(&req)
                .unwrap_or_else(|e| panic!("{}: solve failed: {e}", id.label()));
            validate_independent(&inst, &solution);
            assert!(
                solution.achieved.satisfies(&req.guarantee),
                "{}: achieved {} does not satisfy requested {}",
                id.label(),
                solution.achieved.label(),
                req.guarantee.label()
            );
            assert_eq!(solution.schedule.n(), inst.n());
            exercised.push(solution.stats.backend);
        }
    }
    // The request matrix must have reached every family of backends.
    for required in [
        BackendId::Lpt,
        BackendId::Graham,
        BackendId::Multifit,
        BackendId::Sbo,
        BackendId::KernelRls,
        BackendId::KernelTriRls,
        BackendId::NaiveRls,
        BackendId::Ptas,
        BackendId::ExactBranchBound,
        BackendId::ExactParetoEnum,
        BackendId::ConstrainedSearch,
    ] {
        assert!(
            exercised.contains(&required),
            "backend {} never exercised",
            required.label()
        );
    }
}

/// Contract 2: declared guarantees hold against exact optima on the
/// adversarial workloads.
#[test]
fn declared_guarantees_hold_on_adversarial_workloads() {
    let portfolio = Portfolio::standard();
    for (idx, inst) in small_adversarial_instances().iter().enumerate() {
        let opt_c = optimal_cmax(inst);
        let opt_m = optimal_mmax(inst);

        // Exact demand: the optimum itself.
        let req = SolveRequest::independent(inst, ObjectiveMode::CmaxOnly)
            .with_guarantee(Guarantee::Exact);
        let exact = portfolio.solve(&req).unwrap();
        assert!(
            (exact.point.cmax - opt_c).abs() <= TOL,
            "instance {idx}: exact backend returned {} but OPT is {opt_c}",
            exact.point.cmax
        );

        // ε-optimal demand.
        let eps = 0.25;
        let req = SolveRequest::independent(inst, ObjectiveMode::CmaxOnly)
            .with_guarantee(Guarantee::EpsilonOptimal(eps));
        if let Ok(solution) = portfolio.solve(&req) {
            assert!(
                solution.point.cmax <= (1.0 + eps) * opt_c + TOL,
                "instance {idx}: {} exceeded (1+ε)·OPT",
                solution.stats.backend
            );
        }

        // Paper-ratio backends, checked against the true optima through
        // the ratio bound each solution itself declares.
        for (req, against_mmax) in [
            (
                SolveRequest::independent(inst, ObjectiveMode::CmaxOnly)
                    .with_guarantee(Guarantee::PaperRatio),
                false,
            ),
            (
                SolveRequest::independent(inst, ObjectiveMode::BiObjective { delta: 1.0 })
                    .with_guarantee(Guarantee::PaperRatio),
                true,
            ),
            (
                SolveRequest::independent(inst, ObjectiveMode::BiObjective { delta: 2.5 })
                    .with_guarantee(Guarantee::PaperRatio),
                true,
            ),
        ] {
            // Pin the paper-ratio tier explicitly: auto-selection would
            // route these tiny instances to the exact backends, whose
            // bound (1, ·) is trivially satisfied.
            for id in [BackendId::Lpt, BackendId::Multifit, BackendId::Sbo] {
                let backend = portfolio.backend(id).unwrap();
                if backend.bid(&req).is_none() {
                    continue;
                }
                let solution = backend.solve(&req).unwrap();
                let (gc, gm) = solution
                    .ratio_bound
                    .expect("paper-ratio solutions declare their factors");
                assert!(
                    solution.point.cmax <= gc * opt_c * (1.0 + TOL) + TOL,
                    "instance {idx}, {}: Cmax {} > {gc}·{opt_c}",
                    id.label(),
                    solution.point.cmax
                );
                if against_mmax && gm.is_finite() {
                    assert!(
                        solution.point.mmax <= gm * opt_m * (1.0 + TOL) + TOL,
                        "instance {idx}, {}: Mmax {} > {gm}·{opt_m}",
                        id.label(),
                        solution.point.mmax
                    );
                }
            }
        }

        // The RLS∆ memory guarantee is unconditional: Mmax ≤ ∆·LB.
        for delta in [2.25, 3.0, 6.0] {
            let req = SolveRequest::independent(inst, ObjectiveMode::BiObjective { delta });
            for id in [BackendId::KernelRls, BackendId::NaiveRls] {
                let solution = portfolio.backend(id).unwrap().solve(&req).unwrap();
                let lb = mmax_lower_bound(inst.tasks(), inst.m());
                assert!(
                    solution.point.mmax <= delta * lb + TOL,
                    "instance {idx}, {}: Mmax {} exceeds ∆·LB {}",
                    id.label(),
                    solution.point.mmax,
                    delta * lb
                );
            }
        }
    }
}

/// Contract 3a: the portfolio's routed solve is bit-identical to calling
/// the selected backend directly, for every request shape.
#[test]
fn portfolio_solve_is_bit_identical_to_the_selected_backend() {
    let portfolio = Portfolio::standard();
    let instances = [
        random_instance(8, 2, TaskDistribution::Correlated, &mut seeded_rng(31)),
        random_instance(40, 4, TaskDistribution::AntiCorrelated, &mut seeded_rng(32)),
        random_instance(150, 8, TaskDistribution::Uncorrelated, &mut seeded_rng(33)),
    ];
    for inst in &instances {
        for req in independent_requests(inst) {
            let Ok(selected) = portfolio.select(&req) else {
                continue;
            };
            let direct = selected.solve(&req).unwrap();
            let routed = portfolio.solve(&req).unwrap();
            assert_eq!(routed.schedule, direct.schedule, "{}", selected.id());
            assert_eq!(routed.point, direct.point);
            assert_eq!(routed.achieved, direct.achieved);
            assert_eq!(routed.ratio_bound, direct.ratio_bound);
            assert_eq!(routed.stats.backend, direct.stats.backend);
        }
    }
}

/// Contract 3b: one shared kernel workspace across a mixed stream of
/// instances and request shapes changes nothing — every solve through
/// `solve_in` matches the fresh-workspace solve bit for bit.
#[test]
fn shared_workspace_stream_is_bit_identical_to_fresh_solves() {
    let portfolio = Portfolio::standard();
    let mut rng = seeded_rng(77);
    let dag_a = dag_workload(
        DagFamily::LayeredRandom,
        90,
        4,
        TaskDistribution::AntiCorrelated,
        &mut rng,
    );
    let dag_b = dag_workload(
        DagFamily::ForkJoin,
        40,
        6,
        TaskDistribution::Bimodal,
        &mut rng,
    );
    let ind = random_instance(60, 4, TaskDistribution::AntiCorrelated, &mut rng);

    let mut ws = KernelWorkspace::new();
    // Interleave DAG and independent requests of different shapes through
    // one workspace, twice, to stress buffer reuse across shapes.
    for _ in 0..2 {
        for delta in [2.5, 3.0, 8.0] {
            for dag in [&dag_a, &dag_b] {
                let req = SolveRequest::precedence(dag, ObjectiveMode::BiObjective { delta });
                let streamed = portfolio.solve_in(&req, &mut ws).unwrap();
                let fresh = portfolio.solve(&req).unwrap();
                assert_eq!(streamed.schedule, fresh.schedule, "∆={delta}");
                assert_eq!(streamed.point, fresh.point);
                assert!(streamed.stats.workspace_reused);
                assert!(!fresh.stats.workspace_reused);
            }
            let req = SolveRequest::independent(&ind, ObjectiveMode::TriObjective { delta });
            let streamed = portfolio.solve_in(&req, &mut ws).unwrap();
            let fresh = portfolio.solve(&req).unwrap();
            assert_eq!(streamed.schedule, fresh.schedule, "tri ∆={delta}");
        }
        let req = SolveRequest::precedence(&dag_a, ObjectiveMode::CmaxOnly);
        let streamed = portfolio.solve_in(&req, &mut ws).unwrap();
        assert_eq!(streamed.schedule, portfolio.solve(&req).unwrap().schedule);
    }
}

/// Contract 3c: the kernel-backend path is bit-identical to the
/// pre-refactor entry points, across DAG families, sizes and ∆ values.
#[test]
fn kernel_backend_path_matches_pre_refactor_entry_points() {
    let portfolio = Portfolio::standard();
    let mut rng = seeded_rng(123);
    let mut ws = KernelWorkspace::new();
    for family in [
        DagFamily::LayeredRandom,
        DagFamily::GaussianElimination,
        DagFamily::Fft,
        DagFamily::Erdos,
    ] {
        for m in [2usize, 4, 8] {
            let inst = dag_workload(family, 70, m, TaskDistribution::AntiCorrelated, &mut rng);
            for delta in [2.25, 3.0, 6.0] {
                let req = SolveRequest::precedence(&inst, ObjectiveMode::BiObjective { delta })
                    .with_guarantee(Guarantee::PaperRatio);
                assert_eq!(portfolio.selected(&req).unwrap(), BackendId::KernelRls);
                let solution = portfolio.solve(&req).unwrap();
                let config = RlsConfig::new(delta);
                let direct = rls(&inst, &config).unwrap();
                assert_eq!(
                    solution.schedule,
                    direct.schedule,
                    "{} m={m} ∆={delta}",
                    family.label()
                );
                assert_eq!(solution.ratio_bound, Some(direct.guarantee));
                let via_ws = portfolio.solve_in(&req, &mut ws).unwrap();
                assert_eq!(
                    via_ws.schedule,
                    rls_in(&inst, &config, &mut ws).unwrap().schedule
                );
            }
        }
    }

    // SBO∆ and tri-objective one-shots behind the portfolio.
    let ind = random_instance(80, 4, TaskDistribution::AntiCorrelated, &mut rng);
    for delta in [0.5, 1.0, 2.0] {
        let req = SolveRequest::independent(&ind, ObjectiveMode::BiObjective { delta });
        let solution = portfolio.solve(&req).unwrap();
        assert_eq!(solution.stats.backend, BackendId::Sbo);
        let direct = sbo(&ind, &SboConfig::new(delta, InnerAlgorithm::Lpt)).unwrap();
        assert_eq!(
            solution.schedule.assignment(),
            direct.assignment,
            "∆={delta}"
        );
    }
    for delta in [2.5, 4.0] {
        let req = SolveRequest::independent(&ind, ObjectiveMode::TriObjective { delta });
        let solution = portfolio.solve(&req).unwrap();
        let direct = tri_objective_rls(&ind, delta).unwrap();
        assert_eq!(solution.schedule, direct.rls.schedule, "tri ∆={delta}");
        assert_eq!(solution.sum_ci, Some(direct.point.sum_ci));
    }
}

/// Refusals: requests no backend can serve fail with the typed error,
/// never a wrong-guarantee solution.
#[test]
fn unservable_requests_are_refused_with_the_typed_error() {
    let portfolio = Portfolio::standard();
    let big = random_instance(500, 8, TaskDistribution::Uncorrelated, &mut seeded_rng(5));
    let mut rng = seeded_rng(6);
    let dag = dag_workload(
        DagFamily::LayeredRandom,
        60,
        4,
        TaskDistribution::Uncorrelated,
        &mut rng,
    );

    let refused = [
        // Exact on 500 tasks: outside every exact gate.
        SolveRequest::independent(&big, ObjectiveMode::CmaxOnly).with_guarantee(Guarantee::Exact),
        // Exact tri-objective: no exact solver exists at any size.
        SolveRequest::independent(&big, ObjectiveMode::TriObjective { delta: 3.0 })
            .with_guarantee(Guarantee::Exact),
        // Paper-ratio on the independent constrained problem:
        // inapproximable (Section 2.2).
        SolveRequest::independent(&big, ObjectiveMode::MemoryBudget { budget: 1e12 })
            .with_guarantee(Guarantee::PaperRatio),
        // DAG bi-objective below ∆ = 2: Lemma 4 leaves no algorithm.
        SolveRequest::precedence(&dag, ObjectiveMode::BiObjective { delta: 1.5 }),
        // ε-optimal on a DAG: no PTAS under precedence constraints.
        SolveRequest::precedence(&dag, ObjectiveMode::CmaxOnly)
            .with_guarantee(Guarantee::EpsilonOptimal(0.1)),
    ];
    for req in refused {
        match portfolio.solve(&req) {
            Err(ModelError::NoQualifiedBackend { .. }) => {}
            other => panic!(
                "{:?}/{} must be refused, got {other:?}",
                req.objective,
                req.guarantee.label()
            ),
        }
    }

    // The ε gate mirrors the PTAS work estimate: when the configuration
    // DP is unaffordable the request is refused rather than silently
    // served with an FFD fallback.
    let weights: Vec<f64> = (0..big.n()).map(|i| big.p(i)).collect();
    let eps = 0.02;
    if !sws_ptas::dp_work_affordable(&weights, big.m(), eps) {
        let req = SolveRequest::independent(&big, ObjectiveMode::CmaxOnly)
            .with_guarantee(Guarantee::EpsilonOptimal(eps));
        assert!(matches!(
            portfolio.solve(&req),
            Err(ModelError::NoQualifiedBackend { .. })
        ));
    }
}

/// The edge-free-DAG bridge: a precedence request whose graph has no
/// edges is served by the independent-task backends, identically to the
/// genuinely independent request.
#[test]
fn edge_free_dags_are_served_as_independent_instances() {
    let portfolio = Portfolio::standard();
    let ind = random_instance(30, 3, TaskDistribution::AntiCorrelated, &mut seeded_rng(91));
    let dag = DagInstance::new(sws_dag::TaskGraph::new(ind.tasks().clone()), ind.m()).unwrap();
    for (objective, guarantee) in [
        (ObjectiveMode::CmaxOnly, Guarantee::None),
        (ObjectiveMode::BiObjective { delta: 1.0 }, Guarantee::None),
        (
            ObjectiveMode::BiObjective { delta: 0.5 },
            Guarantee::PaperRatio,
        ),
        (ObjectiveMode::TriObjective { delta: 3.0 }, Guarantee::None),
    ] {
        let as_dag = SolveRequest::precedence(&dag, objective).with_guarantee(guarantee);
        let as_ind = SolveRequest::independent(&ind, objective).with_guarantee(guarantee);
        let a = portfolio.solve(&as_dag).unwrap();
        let b = portfolio.solve(&as_ind).unwrap();
        assert_eq!(a.stats.backend, b.stats.backend, "{objective:?}");
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.point, b.point);
    }
}
