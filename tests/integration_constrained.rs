//! Integration test: the Section 7 constrained-problem procedure across
//! crates — budget-driven ∆ derivation / binary search, exact constrained
//! optima from the exhaustive solver, and the E4 harness.

use sws_bench::e4_constrained::{run as run_e4, E4Config};
use sws_core::constrained::{
    solve_dag_with_memory_budget, solve_with_memory_budget, ConstrainedOutcome,
    DagConstrainedOutcome,
};
use sws_core::sbo::InnerAlgorithm;
use sws_exact::pareto_enum::{best_cmax_under_memory_budget, pareto_front};
use sws_model::bounds::mmax_lower_bound;
use sws_model::validate::{check_memory, validate_timed};
use sws_model::Instance;
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::random::random_instance;
use sws_workloads::rng::seeded_rng;
use sws_workloads::TaskDistribution;

#[test]
fn independent_solutions_fit_the_budget_and_never_beat_the_exact_optimum() {
    for seed in 0..4u64 {
        let inst = random_instance(
            10,
            3,
            TaskDistribution::AntiCorrelated,
            &mut seeded_rng(seed),
        );
        let lb = mmax_lower_bound(inst.tasks(), inst.m());
        for beta in [1.1, 1.4, 2.0, 3.0] {
            let budget = beta * lb;
            let outcome = solve_with_memory_budget(&inst, budget, InnerAlgorithm::Lpt).unwrap();
            if let ConstrainedOutcome::Feasible {
                assignment, point, ..
            } = outcome
            {
                check_memory(inst.tasks(), &assignment, budget).unwrap();
                let exact = best_cmax_under_memory_budget(&inst, budget)
                    .expect("feasible heuristic implies feasible instance");
                assert!(point.cmax + 1e-9 >= exact, "seed {seed} β {beta}");
            }
        }
    }
}

#[test]
fn every_pareto_point_is_reachable_as_a_budget_query() {
    // Walking the exact Pareto front and using each point's memory value
    // as the budget must return exactly that point's makespan.
    let inst = random_instance(9, 2, TaskDistribution::Uncorrelated, &mut seeded_rng(5));
    let front = pareto_front(&inst);
    for (pt, _) in front.iter() {
        let best = best_cmax_under_memory_budget(&inst, pt.mmax + 1e-9).unwrap();
        assert!((best - pt.cmax).abs() < 1e-9);
    }
}

#[test]
fn dag_outcomes_cover_the_three_regimes() {
    let mut rng = seeded_rng(6);
    let inst = dag_workload(
        DagFamily::ForkJoin,
        80,
        4,
        TaskDistribution::Uncorrelated,
        &mut rng,
    );
    let lb = mmax_lower_bound(inst.tasks(), inst.m());

    // Comfortable budget: feasible with a proven guarantee, schedule fully
    // valid under the cap.
    match solve_dag_with_memory_budget(&inst, 3.0 * lb).unwrap() {
        DagConstrainedOutcome::Feasible {
            schedule,
            point,
            delta,
            makespan_guarantee,
        } => {
            assert!((delta - 3.0).abs() < 1e-9);
            assert!(makespan_guarantee > 1.0);
            assert!(point.mmax <= 3.0 * lb + 1e-9);
            validate_timed(
                inst.tasks(),
                inst.m(),
                &schedule,
                inst.graph().all_preds(),
                Some(3.0 * lb),
            )
            .unwrap();
        }
        other => panic!("expected Feasible, got {other:?}"),
    }

    // Tight budget (≤ 2·LB): the paper's procedure explicitly declines.
    assert!(matches!(
        solve_dag_with_memory_budget(&inst, 1.8 * lb).unwrap(),
        DagConstrainedOutcome::NoGuarantee { .. }
    ));

    // Budget below the largest task: provably infeasible.
    let max_s = inst.tasks().max_storage();
    assert!(matches!(
        solve_dag_with_memory_budget(&inst, 0.5 * max_s).unwrap(),
        DagConstrainedOutcome::ProvablyInfeasible { .. }
    ));
}

#[test]
fn infeasible_and_unknown_cases_are_distinguished() {
    // One huge task: any budget below it is *provably* infeasible.
    let inst = Instance::from_ps(&[1.0, 1.0, 1.0], &[10.0, 1.0, 1.0], 2).unwrap();
    assert!(matches!(
        solve_with_memory_budget(&inst, 5.0, InnerAlgorithm::Lpt).unwrap(),
        ConstrainedOutcome::ProvablyInfeasible { .. }
    ));
    // Identical mid-size tasks that cannot be spread: feasibility is open
    // for the heuristic, which must answer NotFound rather than guess.
    let packed = Instance::from_ps(&[1.0; 4], &[3.0; 4], 2).unwrap();
    assert!(matches!(
        solve_with_memory_budget(&packed, 4.0, InnerAlgorithm::Lpt).unwrap(),
        ConstrainedOutcome::NotFound { .. }
    ));
    // The same instance with a workable budget succeeds.
    assert!(solve_with_memory_budget(&packed, 6.0, InnerAlgorithm::Lpt)
        .unwrap()
        .is_feasible());
}

#[test]
fn looser_budgets_never_increase_the_exact_constrained_optimum() {
    // Monotonicity of the exact trade-off curve (the heuristic is compared
    // against it elsewhere): larger budgets can only help.
    let inst = random_instance(10, 2, TaskDistribution::Bimodal, &mut seeded_rng(8));
    let lb = mmax_lower_bound(inst.tasks(), inst.m());
    let mut last = f64::INFINITY;
    for beta in [1.0, 1.2, 1.5, 2.0, 4.0] {
        if let Some(best) = best_cmax_under_memory_budget(&inst, beta * lb) {
            assert!(best <= last + 1e-9);
            last = best;
        }
    }
}

#[test]
fn the_e4_harness_reports_sane_success_rates() {
    let results = run_e4(&E4Config::smoke());
    for row in &results.independent {
        assert!((0.0..=1.0).contains(&row.success_rate));
        if row.cmax_over_opt > 0.0 {
            assert!(row.cmax_over_opt >= 1.0 - 1e-9);
        }
    }
    for row in &results.dag {
        assert!((0.0..=1.0).contains(&row.success_rate));
        if row.beta > 2.0 {
            assert_eq!(row.success_rate, 1.0, "{row:?}");
        } else {
            assert_eq!(row.success_rate, 0.0, "{row:?}");
        }
    }
}
