//! Differential tests: the event-driven scheduling kernel
//! (`sws_listsched::kernel`) against the retained naive `O(n²·m)` oracles
//! (`sws_listsched::naive`, `sws_core::rls::naive`).
//!
//! The kernel claims *schedule-for-schedule* equivalence — same
//! tie-breaking, same placements, identical objective points — across
//! every DAG generator family, every priority order and several
//! processor counts; this suite is the proof. It also re-checks the
//! paper's guarantees (Corollaries 2–4, Lemma 4) on kernel-produced
//! schedules and pins down the kernel's asymptotic advantage with a
//! CI-safe scale smoke test.

use std::time::Instant;

use sws_core::pareto_sweep::{rls_sweep, sbo_sweep};
use sws_core::rls::{naive, rls, rls_guarantee, PriorityOrder, RlsConfig};
use sws_core::sbo::InnerAlgorithm;
use sws_core::tri::tri_objective_rls;
use sws_dag::DagInstance;
use sws_listsched::priority::{hlf_priority, index_priority, spt_priority};
use sws_listsched::{dag_list_schedule, naive as listsched_naive};
use sws_model::bounds::{cmax_lower_bound_prec, mmax_lower_bound};
use sws_model::objectives::ObjectivePoint;
use sws_model::validate::validate_timed;
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::random::random_instance;
use sws_workloads::rng::{derive_seed, seeded_rng};
use sws_workloads::TaskDistribution;

const DIFF_SEED: u64 = 0xD1FF;

fn workload(family: DagFamily, n: usize, m: usize, stream: u64) -> DagInstance {
    let mut rng = seeded_rng(derive_seed(DIFF_SEED, stream));
    dag_workload(family, n, m, TaskDistribution::AntiCorrelated, &mut rng)
}

/// RLS∆: kernel vs naive oracle over every generator family × priority
/// order × m ∈ {2, 4, 8} — schedules must match placement for placement,
/// so the objective points are identical (well within the 1e-9 budget).
#[test]
fn rls_kernel_matches_naive_on_every_family_order_and_m() {
    let mut stream = 0u64;
    for family in DagFamily::all() {
        for order in PriorityOrder::all() {
            for &m in &[2usize, 4, 8] {
                stream += 1;
                let inst = workload(family, 64, m, stream);
                for &delta in &[2.25, 3.0, 6.0] {
                    let config = RlsConfig::new(delta).with_order(order);
                    let fast = rls(&inst, &config).unwrap();
                    let slow = naive::rls(&inst, &config).unwrap();
                    assert_eq!(
                        fast.schedule,
                        slow.schedule,
                        "{}/{} m={m} ∆={delta}: schedules differ",
                        family.label(),
                        order.label()
                    );
                    let pf = ObjectivePoint::of_timed_tasks(inst.tasks(), &fast.schedule);
                    let ps = ObjectivePoint::of_timed_tasks(inst.tasks(), &slow.schedule);
                    assert!(
                        (pf.cmax - ps.cmax).abs() <= 1e-9 && (pf.mmax - ps.mmax).abs() <= 1e-9,
                        "{}/{} m={m} ∆={delta}: objective points differ",
                        family.label(),
                        order.label()
                    );
                    // The kernel's lazily computed marked set is a subset
                    // of the oracle's conservative one and respects the
                    // Lemma 4 bound.
                    for q in 0..m {
                        assert!(!fast.marked[q] || slow.marked[q]);
                    }
                    assert!(fast.marked_count() <= fast.marked_bound());
                }
            }
        }
    }
}

/// The CSR + reused-workspace serving path vs the one-shot kernel entry
/// point over every generator family × priority order × m — one
/// `KernelWorkspace` threaded through the whole stream, so any state
/// leaking between runs of different instances fails the comparison.
/// (The one-shot path is itself checked against the naive oracle above,
/// so this transitively pins the serving path to the original scans.)
#[test]
fn csr_workspace_reuse_matches_the_kernel_on_every_family_order_and_m() {
    let mut ws = sws_listsched::KernelWorkspace::new();
    let mut stream = 300u64;
    for family in DagFamily::all() {
        for order in PriorityOrder::all() {
            for &m in &[2usize, 4, 8] {
                stream += 1;
                let inst = workload(family, 56, m, stream);
                for &delta in &[2.25, 3.0, 6.0] {
                    let config = RlsConfig::new(delta).with_order(order);
                    let reused = sws_core::rls::rls_in(&inst, &config, &mut ws).unwrap();
                    let one_shot = rls(&inst, &config).unwrap();
                    assert_eq!(
                        reused.schedule,
                        one_shot.schedule,
                        "{}/{} m={m} ∆={delta}: workspace-reuse schedule differs",
                        family.label(),
                        order.label()
                    );
                    assert_eq!(reused.marked, one_shot.marked);
                    assert_eq!(reused.lb, one_shot.lb);
                    assert_eq!(reused.memory_cap, one_shot.memory_cap);
                }
            }
        }
    }
}

/// Interleaves instances whose CSR mirrors carry a cost-quantization
/// table with instances whose tables are saturated (forced absent via a
/// key limit of 1) through ONE `KernelWorkspace`: the quantized and the
/// f64-fallback priority paths must produce identical ranks, and the
/// kernel must produce bit-identical schedules through the shared
/// buffers regardless of which flavour ran before. Alternating the
/// order per stream step makes table-dependent state leaks visible.
#[test]
fn saturated_and_quantized_tables_interleave_through_one_workspace() {
    use sws_listsched::kernel::event_driven_schedule_csr;
    use sws_listsched::kernel::MemoryCapAdmission;

    let mut ws = sws_listsched::KernelWorkspace::new();
    let mut stream = 900u64;
    for family in DagFamily::all() {
        for order in [
            PriorityOrder::Spt,
            PriorityOrder::Lpt,
            PriorityOrder::LargestStorage,
        ] {
            stream += 1;
            let inst = workload(family, 48, 4, stream);
            let full = inst.csr();
            let saturated = sws_dag::CsrDag::from_graph_with_key_limit(inst.graph(), 1);
            assert!(full.cost_keys().is_some(), "real costs must quantize");
            assert!(saturated.cost_keys().is_none(), "limit 1 must saturate");

            // Quantized integer sort vs f64 comparator: same permutation.
            let rank = order.rank_csr(inst.graph(), &full);
            assert_eq!(
                rank,
                order.rank_csr(inst.graph(), &saturated),
                "{}/{}: quantized rank differs from the f64 fallback",
                family.label(),
                order.label()
            );

            let cap = 3.0 * inst.mmax_lower_bound();
            let run = |csr: &sws_dag::CsrDag, ws: &mut sws_listsched::KernelWorkspace| {
                let mut admission = MemoryCapAdmission::new(inst.m(), cap);
                event_driven_schedule_csr(csr, inst.m(), &rank, &mut admission, ws)
                    .unwrap()
                    .schedule
            };
            // Alternate which flavour touches the shared workspace first.
            let (a, b) = if stream.is_multiple_of(2) {
                (run(&full, &mut ws), run(&saturated, &mut ws))
            } else {
                let b = run(&saturated, &mut ws);
                (run(&full, &mut ws), b)
            };
            assert_eq!(
                a,
                b,
                "{}/{}: saturated-table schedule differs through the shared workspace",
                family.label(),
                order.label()
            );
            let config = RlsConfig::new(3.0).with_order(order);
            assert_eq!(a, rls(&inst, &config).unwrap().schedule);
        }
    }
}

/// The batch serving API vs per-instance one-shot runs: same schedules,
/// same Lemma-4 marking, in input order, independent of the worker
/// count.
#[test]
fn batch_scheduler_matches_one_shot_runs() {
    use sws_core::batch::{BatchScheduler, BatchSpec};

    let mut stream = 400u64;
    let mut instances = Vec::new();
    for family in DagFamily::all() {
        for &(n, m) in &[(30usize, 2usize), (48, 4), (64, 8)] {
            stream += 1;
            instances.push(workload(family, n, m, stream));
        }
    }
    for workers in [1usize, 3] {
        let scheduler = BatchScheduler::with_workers(workers);
        let rls_outcomes = scheduler
            .run_many(&instances, &BatchSpec::rls(3.0, PriorityOrder::BottomLevel))
            .unwrap();
        let list_outcomes = scheduler
            .run_many(&instances, &BatchSpec::dag_list(PriorityOrder::Index))
            .unwrap();
        assert_eq!(rls_outcomes.len(), instances.len());
        for ((inst, rls_out), list_out) in instances.iter().zip(&rls_outcomes).zip(&list_outcomes) {
            let direct = rls(
                &inst.clone(),
                &RlsConfig::new(3.0).with_order(PriorityOrder::BottomLevel),
            )
            .unwrap();
            assert_eq!(rls_out.schedule, direct.schedule, "workers={workers}");
            assert_eq!(rls_out.marked, direct.marked, "workers={workers}");
            let direct_list = dag_list_schedule(inst, &index_priority(inst.n()));
            assert_eq!(list_out.schedule, direct_list, "workers={workers}");
        }
    }
}

/// Unrestricted DAG list scheduling: kernel vs naive oracle over every
/// family and priority rank.
#[test]
fn dag_list_kernel_matches_naive_on_every_family() {
    let mut stream = 100u64;
    for family in DagFamily::all() {
        for &m in &[2usize, 4, 8] {
            stream += 1;
            let inst = workload(family, 72, m, stream);
            for rank in [
                index_priority(inst.n()),
                hlf_priority(inst.graph()),
                spt_priority(inst.graph()),
            ] {
                let fast = dag_list_schedule(&inst, &rank);
                let slow = listsched_naive::dag_list_schedule(&inst, &rank);
                assert_eq!(fast, slow, "{} m={m}: schedules differ", family.label());
            }
        }
    }
}

/// Graham scheduling of independent weighted tasks: the heap-based
/// `list_schedule` must place every task exactly as the naive argmin scan.
#[test]
fn graham_heap_matches_naive_argmin() {
    use rand::Rng;
    let mut rng = seeded_rng(derive_seed(DIFF_SEED, 777));
    // One processor heap threaded through every call — the reuse path of
    // `list_schedule_with` must reset completely between task lists of
    // different sizes and processor counts.
    let mut procs = sws_listsched::ProcHeap::new(1);
    for &(n, m) in &[(1usize, 1usize), (10, 3), (100, 7), (500, 16), (20, 2)] {
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..50.0)).collect();
        let order: Vec<usize> = (0..n).collect();
        let fast = sws_listsched::list_schedule(&weights, m, &order);
        let slow = listsched_naive::list_schedule(&weights, m, &order);
        assert_eq!(fast, slow, "n={n} m={m}: assignments differ");
        let reused = sws_listsched::list_schedule_with(&weights, m, &order, &mut procs);
        assert_eq!(reused, slow, "n={n} m={m}: reused-heap assignment differs");
        // Duplicate weights exercise the lowest-index tie-break.
        let tied = vec![1.0; n];
        assert_eq!(
            sws_listsched::list_schedule_with(&tied, m, &order, &mut procs),
            listsched_naive::list_schedule(&tied, m, &order)
        );
    }
}

/// The paper's guarantees must keep holding on kernel-produced schedules:
/// feasibility, the ∆·LB memory cap (Corollary 2), the Corollary 3
/// makespan bound and the Lemma 4 marked bound.
#[test]
fn paper_guarantees_hold_on_kernel_schedules() {
    let mut stream = 200u64;
    for family in DagFamily::all() {
        for &m in &[2usize, 4, 8] {
            stream += 1;
            let inst = workload(family, 90, m, stream);
            for &delta in &[2.5, 3.0, 5.0] {
                let result = rls(&inst, &RlsConfig::new(delta)).unwrap();
                validate_timed(
                    inst.tasks(),
                    m,
                    &result.schedule,
                    inst.graph().all_preds(),
                    Some(result.memory_cap.max(result.lb)),
                )
                .unwrap();
                let point = result.objective(inst.tasks());
                let lb_m = mmax_lower_bound(inst.tasks(), m);
                assert!(
                    point.mmax <= delta * lb_m + 1e-9,
                    "{} m={m} ∆={delta}: Corollary 2 violated",
                    family.label()
                );
                let cp = inst.graph().critical_path_length();
                let lb_c = cmax_lower_bound_prec(inst.tasks(), m, cp);
                let (gc, _) = rls_guarantee(delta, m);
                assert!(
                    point.cmax <= gc * lb_c * (1.0 + 1e-9) + 1e-9,
                    "{} m={m} ∆={delta}: Corollary 3 violated",
                    family.label()
                );
                assert!(result.marked_count() <= result.marked_bound());
            }
        }
    }
}

/// The tri-objective path (Corollary 4) rides on the kernel through
/// `rls_independent`; its schedule must match the naive oracle's on the
/// independent-task relaxation with SPT tie-breaking.
#[test]
fn tri_objective_matches_naive_oracle() {
    let inst = random_instance(
        60,
        4,
        TaskDistribution::Bimodal,
        &mut seeded_rng(derive_seed(DIFF_SEED, 888)),
    );
    for &delta in &[2.5, 3.0, 4.0] {
        let tri = tri_objective_rls(&inst, delta).unwrap();
        let graph = sws_dag::TaskGraph::new(inst.tasks().clone());
        let dag = DagInstance::new(graph, inst.m()).unwrap();
        let slow = naive::rls(&dag, &RlsConfig::spt(delta)).unwrap();
        assert_eq!(tri.rls.schedule, slow.schedule, "∆={delta}");
    }
}

/// The parallelized sweeps must produce exactly the curve the serial
/// per-∆ loop produces.
#[test]
fn parallel_sweeps_match_serial_recomputation() {
    let mut rng = seeded_rng(derive_seed(DIFF_SEED, 999));
    let dag = dag_workload(
        DagFamily::GaussianElimination,
        60,
        4,
        TaskDistribution::Bimodal,
        &mut rng,
    );
    let curve = rls_sweep(&dag, &RlsConfig::new(3.0), 2.1, 10.0, 8).unwrap();
    assert!(!curve.is_empty());
    for p in &curve {
        // Each point must be reproduced by a direct serial run at its ∆.
        let direct = rls(
            &dag,
            &RlsConfig {
                delta: p.delta,
                order: PriorityOrder::Index,
            },
        )
        .unwrap();
        assert_eq!(p.schedule, direct.schedule, "∆={}", p.delta);
    }

    let inst = random_instance(40, 4, TaskDistribution::AntiCorrelated, &mut rng);
    let sbo_curve = sbo_sweep(&inst, InnerAlgorithm::Lpt, 0.125, 8.0, 9).unwrap();
    assert!(!sbo_curve.is_empty());
    for w in sbo_curve.windows(2) {
        assert!(w[0].point.cmax <= w[1].point.cmax + 1e-9);
    }
}

/// Scale smoke test: the kernel must schedule a 10 000-task layered DAG
/// on 32 processors well inside a CI-safe budget (the naive oracle takes
/// minutes at this size — that asymmetry is the whole point of the
/// rework; the measured gap is recorded in docs/PERFORMANCE.md).
#[test]
fn kernel_handles_10k_tasks_within_ci_budget() {
    let mut rng = seeded_rng(derive_seed(DIFF_SEED, 4242));
    let inst = dag_workload(
        DagFamily::LayeredRandom,
        10_000,
        32,
        TaskDistribution::Uncorrelated,
        &mut rng,
    );
    assert!(inst.n() >= 9_000, "generator produced {} tasks", inst.n());

    let t0 = Instant::now();
    let result = rls(&inst, &RlsConfig::new(3.0)).unwrap();
    let rls_elapsed = t0.elapsed();

    let t1 = Instant::now();
    let sched = dag_list_schedule(&inst, &hlf_priority(inst.graph()));
    let list_elapsed = t1.elapsed();

    // Generous even for debug builds on slow CI machines; release builds
    // finish both in well under a second.
    assert!(
        rls_elapsed.as_secs_f64() < 30.0,
        "kernel RLS took {rls_elapsed:?} on n=10k, m=32"
    );
    assert!(
        list_elapsed.as_secs_f64() < 30.0,
        "kernel list scheduling took {list_elapsed:?} on n=10k, m=32"
    );

    // Sanity: the schedules are feasible and respect the cap.
    let point = result.objective(inst.tasks());
    assert!(point.mmax <= result.memory_cap + 1e-6);
    assert!(sched.cmax(inst.tasks()) > 0.0);
}
