//! End-to-end chaos test of the fault-tolerant service core.
//!
//! A seeded [`FaultPlan`] injects panics into a deterministic subset
//! (well over 10%) of a mixed-tenant request stream. The run must:
//!
//! * drain cleanly — every ticket resolves exactly once, nothing stays
//!   queued or in flight;
//! * account exactly — the per-outcome tallies match the fault plan's
//!   own prediction of which requests were faulted;
//! * keep every worker alive — a follow-up batch after the chaos wave
//!   completes normally;
//! * leave non-faulted responses **bit-identical** to direct
//!   `Portfolio::solve` calls;
//! * resolve a mid-solve cancellation on a stalled large request within
//!   bounded time, via the cooperative probe.
//!
//! `SWS_BENCH_QUICK=1` shrinks the stream for CI smoke runs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sws_core::portfolio::Portfolio;
use sws_model::policy::{RetryPolicy, TenantPolicy};
use sws_model::solve::{Guarantee, ObjectiveMode};
use sws_model::{Instance, SolveRequest};
use sws_service::faults::{silence_injected_panics, FaultPlan, INJECTED_PANIC_MARKER};
use sws_service::{SchedulingService, ServiceError, ServiceRequest};
use sws_workloads::random::random_instance;
use sws_workloads::rng::seeded_rng;
use sws_workloads::TaskDistribution;

const CHAOS_SEED: u64 = 0xC4A0_5EED;

fn request_count() -> usize {
    if std::env::var("SWS_BENCH_QUICK").is_ok() {
        96
    } else {
        512
    }
}

/// One synthetic request: tenant, instance and objective are all a
/// deterministic function of the index.
struct Spec {
    tenant: &'static str,
    inst: Arc<Instance>,
    objective: ObjectiveMode,
}

fn specs(n_requests: usize) -> Vec<Spec> {
    (0..n_requests)
        .map(|i| {
            let tenant = if i % 3 == 0 { "retrying" } else { "basic" };
            let n = 8 + (i % 28);
            let m = 2 + (i % 3);
            let dist = match i % 3 {
                0 => TaskDistribution::AntiCorrelated,
                1 => TaskDistribution::Correlated,
                _ => TaskDistribution::Uncorrelated,
            };
            let inst = Arc::new(random_instance(
                n,
                m,
                dist,
                &mut seeded_rng(1000 + i as u64),
            ));
            let objective = match i % 4 {
                0 => ObjectiveMode::CmaxOnly,
                1 => ObjectiveMode::BiObjective { delta: 2.5 },
                2 => ObjectiveMode::TriObjective { delta: 3.0 },
                _ => ObjectiveMode::BiObjective { delta: 1.0 },
            };
            Spec {
                tenant,
                inst,
                objective,
            }
        })
        .collect()
}

#[test]
fn chaos_wave_drains_cleanly_with_exact_accounting() {
    silence_injected_panics();
    let n_requests = request_count();
    let specs = specs(n_requests);

    // Panics are transient (first attempt only): the "retrying" tenant
    // recovers them on its second attempt, the "basic" tenant (no retry
    // budget) surfaces them as SolverPanicked.
    let plan = Arc::new(
        FaultPlan::new(CHAOS_SEED)
            .with_panics(0.2)
            .with_transient_panics(),
    );

    // The plan's own prediction of the faulted subset, recomputed the
    // way the worker builds its dispatch request.
    let faulted: Vec<bool> = specs
        .iter()
        .map(|s| {
            let req =
                SolveRequest::independent(&s.inst, s.objective).with_guarantee(Guarantee::None);
            plan.panics_on(&req)
        })
        .collect();
    let n_faulted = faulted.iter().filter(|&&f| f).count();
    assert!(
        n_faulted * 10 >= n_requests,
        "the chaos plan must fault at least 10% of requests: {n_faulted}/{n_requests}"
    );

    let service = SchedulingService::builder()
        .workers(4)
        .queue_capacity(n_requests)
        .tenant("basic", TenantPolicy::unlimited())
        .tenant(
            "retrying",
            TenantPolicy::unlimited().with_retry(RetryPolicy::with_attempts(2)),
        )
        .portfolio(Arc::clone(&plan).wrap(Portfolio::standard()))
        .build();
    let handle = service.handle();

    let tickets: Vec<_> = specs
        .iter()
        .map(|s| {
            handle
                .submit(ServiceRequest::independent(
                    s.tenant,
                    Arc::clone(&s.inst),
                    s.objective,
                ))
                .expect("admission is unconstrained in this test")
        })
        .collect();

    let direct = Portfolio::standard();
    let (mut completed, mut panicked, mut recovered) = (0usize, 0usize, 0usize);
    for ((spec, ticket), &was_faulted) in specs.iter().zip(tickets).zip(&faulted) {
        let outcome = ticket.wait();
        match outcome {
            Ok(solution) => {
                completed += 1;
                // Bit-identity against a direct solve of the same
                // request on an unfaulted portfolio.
                let req = SolveRequest::independent(&spec.inst, spec.objective)
                    .with_guarantee(Guarantee::None);
                let reference = direct.solve(&req).expect("direct solve succeeds");
                assert_eq!(solution.schedule, reference.schedule);
                assert_eq!(solution.point, reference.point);
                assert_eq!(solution.stats.backend, reference.stats.backend);
                if was_faulted {
                    // Only the retrying tenant can complete a faulted
                    // request, and only on its second attempt.
                    assert_eq!(spec.tenant, "retrying");
                    assert_eq!(solution.stats.attempts, 2);
                    recovered += 1;
                } else {
                    assert_eq!(solution.stats.attempts, 1);
                }
            }
            Err(ServiceError::SolverPanicked { message, .. }) => {
                panicked += 1;
                assert!(was_faulted, "an unfaulted request must never panic");
                assert_eq!(spec.tenant, "basic");
                assert!(message.contains(INJECTED_PANIC_MARKER));
            }
            Err(other) => panic!("unexpected outcome: {other:?}"),
        }
    }

    // Exact accounting: every ticket resolved to exactly one of the two
    // expected outcomes, and the counters agree.
    assert_eq!(completed + panicked, n_requests);
    let stats = service.shutdown();
    assert_eq!(stats.global.admitted as usize, n_requests);
    assert_eq!(stats.global.completed as usize, completed);
    assert_eq!(stats.global.panicked as usize, panicked);
    assert_eq!(stats.global.terminal_outcomes() as usize, n_requests);
    assert_eq!(stats.global.retried as usize, recovered);
    assert_eq!(stats.global.in_flight, 0);
    assert_eq!(stats.queue_depth, 0);
    assert!(recovered > 0, "some faulted requests must have recovered");
    assert!(panicked > 0, "some faulted requests must have surfaced");
}

#[test]
fn workers_survive_a_total_panic_wave() {
    silence_injected_panics();
    // Every request of the first wave panics on every attempt. If any
    // of the 3 workers died, the follow-up wave could not complete on
    // all of them.
    let plan = Arc::new(FaultPlan::new(7).with_panics(1.0));
    let service = SchedulingService::builder()
        .workers(3)
        .tenant("t", TenantPolicy::unlimited())
        .portfolio(Arc::clone(&plan).wrap(Portfolio::standard()))
        .build();

    let wave = |seed_base: u64| -> Vec<_> {
        (0..24u64)
            .map(|i| {
                let inst = Arc::new(random_instance(
                    10 + (i as usize % 8),
                    2,
                    TaskDistribution::Uncorrelated,
                    &mut seeded_rng(seed_base + i),
                ))
                .clone();
                ServiceRequest::independent("t", inst, ObjectiveMode::CmaxOnly)
            })
            .collect()
    };

    for outcome in service.run_all(wave(5000)) {
        assert!(matches!(
            outcome.unwrap_err(),
            ServiceError::SolverPanicked { .. }
        ));
    }

    // Follow-up wave: different instances (different fingerprints) —
    // with panic rate 1.0 they all still panic, proving the workers are
    // alive and still isolating, not just idle.
    for outcome in service.run_all(wave(6000)) {
        assert!(matches!(
            outcome.unwrap_err(),
            ServiceError::SolverPanicked { .. }
        ));
    }

    let stats = service.shutdown();
    assert_eq!(stats.global.panicked, 48);
    assert_eq!(stats.global.terminal_outcomes(), 48);
    assert_eq!(stats.global.in_flight, 0);
}

#[test]
fn a_flooding_tenant_cannot_starve_the_others() {
    silence_injected_panics();
    // Overload chaos: one tenant bursts 10× its base wave ahead of a
    // victim tenant's trickle, onto a single worker so the queue is
    // the only thing deciding who gets served. Under the old
    // strict-priority pop the victims (submitted after the burst)
    // would drain last, their p99 riding the flood's tail; under DRR
    // each victim request waits only ~one flood request per rotation.
    let base = if std::env::var("SWS_BENCH_QUICK").is_ok() {
        10
    } else {
        20
    };
    let plan = FaultPlan::new(CHAOS_SEED).with_flood("flood", 10);
    let (flood_tenant, factor) = plan.flood_tenant().expect("flood is configured");
    assert_eq!((flood_tenant, factor), ("flood", 10));

    let mk_wave = |tenant: &str, seed_base: u64| -> Vec<ServiceRequest> {
        (0..base)
            .map(|i| {
                let inst = Arc::new(random_instance(
                    12 + (i % 8),
                    2,
                    TaskDistribution::Uncorrelated,
                    &mut seeded_rng(seed_base + i as u64),
                ));
                ServiceRequest::independent(tenant, inst, ObjectiveMode::CmaxOnly)
            })
            .collect()
    };
    let flood_wave = plan.flood_wave(mk_wave("flood", 7000));
    let victim_wave = mk_wave("victim", 8000);
    assert_eq!(flood_wave.len(), base * factor as usize);

    let service = SchedulingService::builder()
        .workers(1)
        .queue_capacity(flood_wave.len() + victim_wave.len() + 8)
        .tenant("flood", TenantPolicy::unlimited())
        .tenant("victim", TenantPolicy::unlimited())
        .build();
    let handle = service.handle();

    // The burst lands first, then the victims trickle in behind it.
    let flood_tickets: Vec<_> = flood_wave
        .into_iter()
        .map(|r| handle.submit(r).expect("flood submit admitted"))
        .collect();
    let victim_tickets: Vec<_> = victim_wave
        .into_iter()
        .map(|r| handle.submit(r).expect("victim submit admitted"))
        .collect();

    for ticket in victim_tickets {
        ticket.wait().expect("victim requests complete under flood");
    }
    for ticket in flood_tickets {
        ticket.wait().expect("flood requests complete too");
    }

    let stats = service.shutdown();
    let victim = stats.tenant("victim").expect("victim scope");
    let flood = stats.tenant("flood").expect("flood scope");
    assert_eq!(victim.completed as usize, base);
    assert_eq!(flood.completed as usize, base * factor as usize);
    assert_eq!(stats.global.in_flight, 0);
    assert_eq!(stats.queue_depth, 0);

    // The fairness signal: the victims' tail latency must sit well
    // under the flood's own (the flood queues behind itself; the
    // victims do not queue behind the flood). Strict priority would
    // put both tails at the same end of the drain.
    let victim_p99 = victim.p99_latency.expect("victim histogram has data");
    let flood_p99 = flood.p99_latency.expect("flood histogram has data");
    assert!(
        victim_p99 <= flood_p99 / 2,
        "victim p99 {victim_p99:?} must stay well under the flooding tenant's {flood_p99:?}"
    );
}

#[test]
fn mid_solve_cancellation_resolves_within_bounded_time() {
    silence_injected_panics();
    // A large kernel-bound instance, stalled by the fault plan for far
    // longer than the test tolerates: only the cooperative probe firing
    // between rounds can resolve the ticket in time.
    let plan = Arc::new(FaultPlan::new(11).with_delays(1.0, Duration::from_secs(60)));
    let service = SchedulingService::builder()
        .workers(1)
        .tenant("t", TenantPolicy::unlimited())
        .portfolio(Arc::clone(&plan).wrap(Portfolio::standard()))
        .build();
    let handle = service.handle();
    let inst = Arc::new(random_instance(
        4000,
        8,
        TaskDistribution::AntiCorrelated,
        &mut seeded_rng(99),
    ));
    let ticket = handle
        .submit(ServiceRequest::independent(
            "t",
            inst,
            ObjectiveMode::BiObjective { delta: 2.5 },
        ))
        .unwrap();

    let started = Instant::now();
    loop {
        let stats = handle.stats();
        if stats.queue_depth == 0 && stats.global.in_flight == 1 {
            break;
        }
        assert!(
            started.elapsed() < Duration::from_secs(15),
            "worker never picked the job up"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    ticket.cancel();
    let outcome = ticket.wait();
    assert!(
        started.elapsed() < Duration::from_secs(15),
        "mid-solve cancellation took {:?}",
        started.elapsed()
    );
    assert_eq!(outcome.unwrap_err(), ServiceError::Cancelled);
    let stats = service.shutdown();
    assert_eq!(stats.global.cancelled, 1);
    assert_eq!(stats.global.in_flight, 0);
}
