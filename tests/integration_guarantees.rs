//! Property-based integration test: the paper's guarantees as invariants
//! over arbitrary randomly generated instances.
//!
//! Each property draws instances directly from proptest strategies (not
//! from the workload generators) so shrinking can home in on minimal
//! counterexamples if an algorithm ever violates a proven bound.

use proptest::collection::vec;
use proptest::prelude::*;

use sws_core::bounds::violates_impossibility;
use sws_core::constrained::{solve_with_memory_budget, ConstrainedOutcome};
use sws_core::rls::{lemma4_marked_bound, rls, rls_independent, RlsConfig};
use sws_core::sbo::{sbo, sbo_guarantee, InnerAlgorithm, SboConfig};
use sws_core::tri::tri_objective_rls;
use sws_dag::{DagInstance, TaskGraph};
use sws_exact::branch_bound::optimal_point;
use sws_listsched::spt::optimal_sum_completion;
use sws_model::bounds::{cmax_lower_bound, cmax_lower_bound_prec, mmax_lower_bound};
use sws_model::objectives::ObjectivePoint;
use sws_model::task::TaskSet;
use sws_model::validate::{validate_assignment, validate_timed};
use sws_model::Instance;

/// Strategy: a non-trivial independent-task instance with positive costs.
fn arb_instance(max_n: usize, max_m: usize) -> impl Strategy<Value = Instance> {
    (2usize..=max_m, 1usize..=max_n).prop_flat_map(move |(m, n)| {
        (vec(0.1f64..50.0, n), vec(0.1f64..50.0, n), Just(m))
            .prop_map(|(p, s, m)| Instance::from_ps(&p, &s, m).expect("valid draws"))
    })
}

/// Strategy: a random DAG instance built from a task list plus a subset of
/// forward edges (i -> j with i < j), which is acyclic by construction.
fn arb_dag(max_n: usize, max_m: usize) -> impl Strategy<Value = DagInstance> {
    (2usize..=max_m, 2usize..=max_n).prop_flat_map(move |(m, n)| {
        (
            vec(0.1f64..20.0, n),
            vec(0.1f64..20.0, n),
            vec(any::<bool>(), n * (n - 1) / 2),
            Just(m),
        )
            .prop_map(|(p, s, edge_mask, m)| {
                let tasks = TaskSet::from_ps(&p, &s).expect("valid draws");
                let mut graph = TaskGraph::new(tasks);
                let mut idx = 0usize;
                for i in 0..p.len() {
                    for j in (i + 1)..p.len() {
                        // Keep the graph sparse so schedules stay interesting.
                        if edge_mask[idx] && (i + j) % 3 == 0 {
                            graph.add_edge(i, j).expect("forward edges are acyclic");
                        }
                        idx += 1;
                    }
                }
                DagInstance::new(graph, m).expect("m > 0")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Properties 1 and 2: the SBO schedule is within (1+∆)·C of the
    /// makespan reference and (1+1/∆)·M of the memory reference, and the
    /// assignment is always complete and valid.
    #[test]
    fn sbo_respects_properties_1_and_2(
        inst in arb_instance(40, 6),
        delta in 0.05f64..8.0,
    ) {
        let result = sbo(&inst, &SboConfig::new(delta, InnerAlgorithm::Lpt)).unwrap();
        validate_assignment(&inst, &result.assignment, None).unwrap();
        let point = result.objective(&inst);
        prop_assert!(point.cmax <= (1.0 + delta) * result.reference_cmax + 1e-9);
        prop_assert!(point.mmax <= (1.0 + 1.0 / delta) * result.reference_mmax + 1e-9);
    }

    /// On small instances the full SBO guarantee holds against the exact
    /// per-objective optima.
    #[test]
    fn sbo_guarantee_holds_against_exact_optima(
        inst in arb_instance(8, 3),
        delta in 0.25f64..4.0,
    ) {
        let result = sbo(&inst, &SboConfig::new(delta, InnerAlgorithm::Lpt)).unwrap();
        let point = result.objective(&inst);
        let opt = optimal_point(&inst);
        let (gc, gm) = result.guarantee;
        prop_assert!(point.cmax <= gc * opt.cmax + 1e-9);
        prop_assert!(point.mmax <= gm * opt.mmax + 1e-9);
        // The guarantee pair itself must never claim something the paper
        // proves impossible.
        let (tc, tm) = sbo_guarantee(delta, 1.0, 1.0);
        prop_assert!(!violates_impossibility(tc, tm, 6, 32));
    }

    /// RLS∆ always produces a feasible schedule whose memory stays within
    /// ∆·LB and whose makespan respects Corollary 3 against the Graham
    /// lower bound; Lemma 4 bounds the marked processors.
    #[test]
    fn rls_respects_corollaries_2_and_3_and_lemma_4(
        inst in arb_dag(25, 6),
        delta in 2.05f64..8.0,
    ) {
        let result = rls(&inst, &RlsConfig::new(delta)).unwrap();
        validate_timed(
            inst.tasks(),
            inst.m(),
            &result.schedule,
            inst.graph().all_preds(),
            Some(delta * result.lb),
        ).unwrap();
        let point = ObjectivePoint::of_timed_tasks(inst.tasks(), &result.schedule);
        prop_assert!(point.mmax <= delta * result.lb + 1e-9);
        let cp = inst.graph().critical_path_length();
        let lb_c = cmax_lower_bound_prec(inst.tasks(), inst.m(), cp);
        if delta > 2.0 {
            let (gc, _) = result.guarantee;
            prop_assert!(point.cmax <= gc * lb_c + 1e-9,
                "cmax {} > {} * {}", point.cmax, gc, lb_c);
        }
        prop_assert!(result.marked_count() <= lemma4_marked_bound(inst.m(), delta));
    }

    /// Corollary 4: the tri-objective SPT-ordered RLS respects all three
    /// bounds, with the ΣCi reference being the exact SPT optimum.
    #[test]
    fn tri_objective_respects_corollary_4(
        inst in arb_instance(30, 5),
        delta in 2.1f64..6.0,
    ) {
        let result = tri_objective_rls(&inst, delta).unwrap();
        let (gc, gm, gs) = result.guarantee;
        let lb_c = cmax_lower_bound(inst.tasks(), inst.m());
        let lb_m = mmax_lower_bound(inst.tasks(), inst.m());
        let opt_sum = optimal_sum_completion(&inst);
        prop_assert!(result.point.cmax <= gc * lb_c + 1e-9);
        prop_assert!(result.point.mmax <= gm * lb_m + 1e-9);
        prop_assert!(result.point.sum_ci <= gs * opt_sum + 1e-9,
            "ΣCi {} > {} * {}", result.point.sum_ci, gs, opt_sum);
    }

    /// The independent-task RLS path and the DAG path agree on instances
    /// without edges.
    #[test]
    fn rls_independent_equals_rls_on_edgeless_graphs(
        inst in arb_instance(20, 4),
        delta in 2.1f64..5.0,
    ) {
        let a = rls_independent(&inst, &RlsConfig::new(delta)).unwrap();
        let dag = DagInstance::new(TaskGraph::new(inst.tasks().clone()), inst.m()).unwrap();
        let b = rls(&dag, &RlsConfig::new(delta)).unwrap();
        prop_assert_eq!(a.schedule, b.schedule);
    }

    /// The constrained-problem solver never returns a schedule that
    /// exceeds the budget, and "provably infeasible" is only claimed when
    /// a single task exceeds the budget.
    #[test]
    fn constrained_solver_respects_the_budget(
        inst in arb_instance(25, 5),
        beta in 1.0f64..4.0,
    ) {
        let lb = mmax_lower_bound(inst.tasks(), inst.m());
        let budget = beta * lb;
        match solve_with_memory_budget(&inst, budget, InnerAlgorithm::Lpt).unwrap() {
            ConstrainedOutcome::Feasible { assignment, point, .. } => {
                validate_assignment(&inst, &assignment, Some(budget)).unwrap();
                prop_assert!(point.mmax <= budget + 1e-9);
            }
            ConstrainedOutcome::ProvablyInfeasible { max_storage } => {
                prop_assert!(max_storage > budget);
            }
            ConstrainedOutcome::NotFound { best_mmax, .. } => {
                prop_assert!(best_mmax > budget);
            }
        }
    }

    /// The SBO objective point is symmetric under swapping the two task
    /// dimensions together with inverting ∆ (Section 2.1 symmetry).
    #[test]
    fn sbo_symmetry_under_dimension_swap(
        inst in arb_instance(20, 4),
        delta in 0.1f64..4.0,
    ) {
        let a = sbo(&inst, &SboConfig::new(delta, InnerAlgorithm::Graham)).unwrap();
        let b = sbo(&inst.swapped(), &SboConfig::new(1.0 / delta, InnerAlgorithm::Graham)).unwrap();
        let pa = a.objective(&inst);
        let pb = b.objective(&inst.swapped());
        prop_assert!((pa.cmax - pb.mmax).abs() < 1e-6);
        prop_assert!((pa.mmax - pb.cmax).abs() < 1e-6);
    }
}
