//! # sws — Scheduling with Storage Constraints
//!
//! Umbrella crate of the reproduction of *Scheduling with Storage
//! Constraints* (Saule, Dutot, Mounié — IPDPS 2008). It re-exports every
//! workspace crate under one roof and hosts the repository-level
//! integration tests (`tests/`) and runnable examples (`examples/`).
//!
//! Crate map:
//!
//! * [`model`] — tasks, instances, schedules, objectives, bounds;
//! * [`dag`] — task graphs, generators, topological utilities;
//! * [`listsched`] — classical list schedulers **and the event-driven
//!   scheduling kernel** shared by every list-scheduling algorithm;
//! * [`exact`] — exhaustive/branch-and-bound baselines;
//! * [`ptas`] — the dual-approximation PTAS used by Corollary 1;
//! * [`simulator`] — discrete-event replay and validation;
//! * [`workloads`] — random and structured instance generators;
//! * [`core`] — the paper's algorithms (SBO∆, RLS∆, tri-objective,
//!   constrained procedure, ∆-sweeps);
//! * [`bench`] — experiment and figure-regeneration harness.

#![forbid(unsafe_code)]

pub use sws_bench as bench;
pub use sws_core as core;
pub use sws_dag as dag;
pub use sws_exact as exact;
pub use sws_listsched as listsched;
pub use sws_model as model;
pub use sws_ptas as ptas;
pub use sws_simulator as simulator;
pub use sws_workloads as workloads;
